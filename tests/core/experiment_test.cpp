// ExperimentRunner consistency: the summary numbers must agree with the raw
// series and the simulation's own bookkeeping.
#include <gtest/gtest.h>

#include "core/experiment.h"

namespace dcm::core {
namespace {

ExperimentResult small_run(ControllerSpec controller = ControllerSpec::none(),
                           int users = 150) {
  ExperimentConfig config;
  config.hardware = {1, 1, 1};
  config.soft = {1000, 100, 80};
  config.workload = WorkloadSpec::rubbos(users);
  config.controller = std::move(controller);
  config.duration_seconds = 90.0;
  config.warmup_seconds = 20.0;
  return run_experiment(config);
}

TEST(ExperimentRunnerTest, CompletedMatchesThroughputSeries) {
  const auto result = small_run();
  double total = 0.0;
  for (const auto& bucket : result.client.throughput_series().buckets()) {
    total += bucket.stat.sum();
  }
  EXPECT_NEAR(total, static_cast<double>(result.completed), 1e-9);
}

TEST(ExperimentRunnerTest, TimelinesCoverTheWholeRun) {
  const auto result = small_run();
  ASSERT_EQ(result.tiers.size(), 3u);
  for (const auto& tier : result.tiers) {
    // 90 one-second buckets (the last sampler tick stamps second 89).
    EXPECT_NEAR(static_cast<double>(tier.provisioned_vms.buckets().size()), 90.0, 1.0);
    EXPECT_EQ(tier.cpu_util.buckets().size(), tier.provisioned_vms.buckets().size());
  }
}

TEST(ExperimentRunnerTest, VmSecondsMatchStaticTopology) {
  const auto result = small_run();
  // No controller: 1 VM per tier for ~90 s each.
  for (size_t i = 0; i < result.tiers.size(); ++i) {
    EXPECT_NEAR(result.vm_seconds[i], 89.0, 2.0) << i;
  }
  // total counts the scalable tiers (tomcat + mysql).
  EXPECT_NEAR(result.total_vm_seconds, result.vm_seconds[1] + result.vm_seconds[2], 1e-9);
  EXPECT_NEAR(result.requests_per_vm_second,
              static_cast<double>(result.completed) / result.total_vm_seconds, 1e-9);
}

TEST(ExperimentRunnerTest, SlaFractionBoundsAndMeaning) {
  const auto light = small_run(ControllerSpec::none(), 60);
  EXPECT_DOUBLE_EQ(light.sla_violation_fraction, 0.0);  // ~60 ms responses

  const auto heavy = small_run(ControllerSpec::none(), 700);
  EXPECT_GT(heavy.sla_violation_fraction, 0.5);  // deeply saturated
  EXPECT_LE(heavy.sla_violation_fraction, 1.0);
}

TEST(ExperimentRunnerTest, UtilTimelineSaturatesUnderOverload) {
  const auto result = small_run(ControllerSpec::none(), 500);
  metrics::Welford tomcat_util;
  for (const auto& bucket : result.tiers[1].cpu_util.buckets()) {
    if (bucket.start < sim::from_seconds(30.0)) continue;
    tomcat_util.merge(bucket.stat);
  }
  EXPECT_GT(tomcat_util.mean(), 0.95);
}

TEST(ExperimentRunnerTest, SweepMeasuresMatchingConcurrency) {
  ExperimentConfig base;
  base.hardware = {1, 1, 1};
  base.soft = {1000, 100, 400};
  base.duration_seconds = 60.0;
  base.warmup_seconds = 20.0;
  const auto points = jmeter_concurrency_sweep(base, {4, 16}, /*match_app_pools=*/true);
  ASSERT_EQ(points.size(), 2u);
  for (const auto& point : points) {
    ASSERT_EQ(point.per_server_concurrency.size(), 3u);
    // With matched pools and zero think, tomcat concurrency tracks offered.
    EXPECT_NEAR(point.per_server_concurrency[1], point.concurrency,
                0.25 * point.concurrency + 0.5);
    EXPECT_GT(point.throughput, 0.0);
  }
  EXPECT_GT(points[1].throughput, points[0].throughput);
}

TEST(ExperimentRunnerTest, ActionCountFiltersByTier) {
  const auto result = small_run(ControllerSpec::ec2(), 500);
  const int total = result.action_count("scale_out");
  const int tomcat = result.action_count("scale_out", "tomcat");
  const int mysql = result.action_count("scale_out", "mysql");
  EXPECT_EQ(total, tomcat + mysql);
  EXPECT_GE(tomcat, 1);
}

}  // namespace
}  // namespace dcm::core
