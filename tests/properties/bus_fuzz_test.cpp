// Randomized produce/poll/commit/reconnect sequences against the bus,
// verified against a per-key reference log. Invariants:
//   * per-key order is preserved (same key → same partition → FIFO)
//   * a consumer group never loses a committed-but-unread record and never
//     re-reads a record it committed past
//   * reconnecting (new Consumer, same group) resumes exactly at the commit
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "bus/consumer.h"
#include "bus/producer.h"
#include "common/rng.h"

namespace dcm::bus {
namespace {

class BusFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BusFuzzTest, RandomInterleavingPreservesPerKeyOrder) {
  Rng rng(GetParam());
  Broker broker;
  TopicConfig config;
  config.partitions = static_cast<int>(rng.uniform_int(1, 5));
  broker.create_topic("fuzz", config);
  Producer producer(broker);

  const int key_count = static_cast<int>(rng.uniform_int(1, 6));
  std::map<std::string, int> produced_per_key;   // next sequence to produce
  std::map<std::string, int> consumed_per_key;   // next sequence expected
  auto consumer = std::make_unique<Consumer>(broker, "g", "fuzz");
  int64_t clock = 0;
  uint64_t uncommitted = 0;  // records read since last commit

  const auto consume_batch = [&](size_t max_records) {
    for (const auto& record : consumer->poll(max_records)) {
      auto& expected = consumed_per_key[record.key];
      const int seq = std::stoi(record.value);
      ASSERT_EQ(seq, expected) << "per-key order broken for " << record.key;
      ++expected;
      ++uncommitted;
    }
  };

  for (int step = 0; step < 2000; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.5) {
      const std::string key = "k" + std::to_string(rng.uniform_int(0, key_count - 1));
      producer.send("fuzz", key, std::to_string(produced_per_key[key]++), ++clock);
    } else if (roll < 0.8) {
      consume_batch(static_cast<size_t>(rng.uniform_int(1, 64)));
    } else if (roll < 0.92) {
      consumer->commit();
      uncommitted = 0;
    } else {
      // Reconnect: a new consumer in the same group resumes from the last
      // commit; anything read-but-uncommitted is redelivered, so rewind the
      // reference cursors by the uncommitted counts.
      consumer = std::make_unique<Consumer>(broker, "g", "fuzz");
      if (uncommitted > 0) {
        // Recompute per-key cursors from committed state by draining and
        // resetting expectations: simplest sound model — recompute from
        // scratch by replaying what the new consumer sees.
        // Rewind: we don't know the per-key split of `uncommitted`, so
        // rebuild expected cursors from a full re-poll below.
        for (auto& [key, seq] : consumed_per_key) seq = -1;  // sentinel
        auto records = consumer->poll(1'000'000);
        for (const auto& record : records) {
          auto& expected = consumed_per_key[record.key];
          const int seq = std::stoi(record.value);
          if (expected == -1) {
            expected = seq;  // first redelivered record sets the cursor
          }
          ASSERT_EQ(seq, expected) << "order broken after reconnect";
          ++expected;
        }
        // Keys with no redelivered records: cursor stays where production is.
        for (auto& [key, seq] : consumed_per_key) {
          if (seq == -1) seq = produced_per_key[key];
        }
        consumer->commit();
        uncommitted = 0;
      }
    }
  }

  // Drain everything; in the end every produced record was seen in order.
  consume_batch(1'000'000);
  for (const auto& [key, produced] : produced_per_key) {
    EXPECT_EQ(consumed_per_key[key], produced) << key;
  }
  EXPECT_EQ(consumer->lag(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BusFuzzTest, ::testing::Values(11, 22, 33, 44, 55, 66),
                         [](const ::testing::TestParamInfo<uint64_t>& param_info) {
                           return "seed_" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace dcm::bus
