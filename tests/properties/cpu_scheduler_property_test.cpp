// Property sweep of the processor-sharing CPU model across parameter sets:
// for ANY valid (S0, α, β, thrash), a leaf server held at constant
// concurrency must complete work at exactly the Eq. 5/7 rate, conserve
// work, and never exceed 100% utilisation.
#include <gtest/gtest.h>

#include <tuple>

#include "ntier/cpu_scheduler.h"
#include "sim/engine.h"

namespace dcm::ntier {
namespace {

struct CpuParamCase {
  const char* name;
  double s0, alpha, beta, thrash_threshold, thrash_factor;
};

class CpuPropertyTest : public ::testing::TestWithParam<std::tuple<CpuParamCase, int>> {};

TEST_P(CpuPropertyTest, SteadyStateThroughputMatchesEq7) {
  const auto& [params, concurrency] = GetParam();
  CpuModelConfig config;
  config.params = {params.s0, params.alpha, params.beta};
  config.thrash_threshold = params.thrash_threshold;
  config.thrash_factor = params.thrash_factor;

  sim::Engine engine;
  CpuScheduler cpu(engine, config);
  cpu.set_thread_count(concurrency);
  uint64_t completed = 0;
  std::function<void()> spawn = [&] {
    cpu.submit(config.params.s0, [&] {
      ++completed;
      spawn();
    });
  };
  for (int i = 0; i < concurrency; ++i) spawn();

  const double horizon = 60.0;
  engine.run_until(sim::from_seconds(horizon));
  const double measured = static_cast<double>(completed) / horizon;
  const double predicted = config.throughput_at(concurrency);
  // Equal deterministic demands complete in synchronized batches, so a
  // finite horizon can undercount by up to one batch (one inflated service
  // time's worth) — include that quantization in the tolerance.
  const double batch_fraction = config.inflated_service_time(concurrency) / horizon;
  EXPECT_NEAR(measured, predicted, predicted * (0.02 + batch_fraction) + 0.2)
      << params.name << " @" << concurrency;
}

TEST_P(CpuPropertyTest, WorkConservationAndUtilBound) {
  const auto& [params, concurrency] = GetParam();
  CpuModelConfig config;
  config.params = {params.s0, params.alpha, params.beta};
  config.thrash_threshold = params.thrash_threshold;
  config.thrash_factor = params.thrash_factor;

  sim::Engine engine;
  CpuScheduler cpu(engine, config);
  cpu.set_thread_count(concurrency);
  std::function<void()> spawn = [&] { cpu.submit(config.params.s0, [&] { spawn(); }); };
  for (int i = 0; i < concurrency; ++i) spawn();

  const double horizon = 30.0;
  engine.run_until(sim::from_seconds(horizon));
  // Work completed equals jobs completed × per-job demand plus in-progress
  // remainder (bounded by concurrency × demand).
  const double accounted =
      static_cast<double>(cpu.jobs_completed()) * config.params.s0;
  EXPECT_GE(cpu.work_done() + 1e-9, accounted);
  EXPECT_LE(cpu.work_done(), accounted + concurrency * config.params.s0 + 1e-9);
  // Utilisation can never exceed wall time.
  EXPECT_LE(cpu.util_integral(), horizon + 1e-9);
  EXPECT_GT(cpu.util_integral(), 0.0);
}

const CpuParamCase kCases[] = {
    {"ideal", 0.010, 0.0, 0.0, 1e18, 0.0},
    {"serial", 0.010, 0.010, 0.0, 1e18, 0.0},
    {"tomcat_like", 2.84e-2, 9.87e-3, 4.54e-5, 300.0, 1e-4},
    {"mysql_like", 7.19e-3, 5.04e-3, 1.65e-6, 64.0, 1e-4},
    {"fast_heavy_crosstalk", 1e-3, 1e-4, 1e-5, 1e18, 0.0},
    {"slow_light", 0.2, 0.01, 1e-6, 1e18, 0.0},
};

INSTANTIATE_TEST_SUITE_P(
    ParamsByConcurrency, CpuPropertyTest,
    ::testing::Combine(::testing::ValuesIn(kCases), ::testing::Values(1, 7, 40, 150)),
    [](const ::testing::TestParamInfo<std::tuple<CpuParamCase, int>>& param_info) {
      return std::string(std::get<0>(param_info.param).name) + "_n" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace dcm::ntier
