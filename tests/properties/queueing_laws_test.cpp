// Operational-law conformance of the whole simulated system, swept across
// load levels. These are the invariants any queueing-faithful simulator
// must satisfy regardless of parameters:
//   * Little's law  N = X·R  at the front tier (closed loop, zero think)
//   * Forced Flow   X_db = V_db · X_system
//   * Interactive response-time law for closed loops with think time:
//       R = U/X − Z
#include <gtest/gtest.h>

#include "core/experiment.h"

namespace dcm::core {
namespace {

class QueueingLawsTest : public ::testing::TestWithParam<int> {};

TEST_P(QueueingLawsTest, InteractiveResponseTimeLawHolds) {
  const int users = GetParam();
  ExperimentConfig config;
  config.hardware = {1, 1, 1};
  config.soft = {1000, 100, 80};
  config.workload = WorkloadSpec::rubbos(users, 3.0);
  config.controller = ControllerSpec::none();
  config.duration_seconds = 150.0;
  config.warmup_seconds = 50.0;
  const auto result = run_experiment(config);

  // X = U/(Z + R) — checked in this direction because inverting to
  // R = U/X − Z amplifies throughput measurement noise at light load.
  const double predicted_x = users / (3.0 + result.mean_response_time);
  EXPECT_NEAR(result.mean_throughput, predicted_x, predicted_x * 0.06)
      << "users=" << users << " R=" << result.mean_response_time;
}

TEST_P(QueueingLawsTest, ForcedFlowLawAtDbTier) {
  const int users = GetParam();
  // Direct simulation access to compare per-tier completion counts.
  sim::Engine engine;
  ntier::NTierApp app(engine, rubbos_app_config({1, 1, 1}, {1000, 100, 80}));
  const workload::ServletCatalog catalog = workload::ServletCatalog::browse_only_mix();
  auto generator = workload::make_rubbos_clients(engine, app, catalog, users);
  generator->start();
  engine.run_until(sim::from_seconds(120.0));

  const double x_system = static_cast<double>(generator->stats().completed());
  const double x_db = static_cast<double>(app.tier(2).completed());
  ASSERT_GT(x_system, 0.0);
  // X_db ≈ V_db · X (queries of in-flight requests blur the tail slightly).
  EXPECT_NEAR(x_db / x_system, catalog.mean_db_queries(), 0.1) << "users=" << users;
}

TEST_P(QueueingLawsTest, LittlesLawAtFrontTierZeroThink) {
  const int users = GetParam();
  sim::Engine engine;
  ntier::NTierApp app(engine, rubbos_app_config({1, 1, 1}, {1000, 100, 80}));
  const workload::ServletCatalog catalog = workload::ServletCatalog::browse_only_mix();
  auto generator = workload::make_jmeter(engine, app, catalog, users);
  generator->start();
  engine.run_until(sim::from_seconds(120.0));

  // N (users, all always in flight) = X · R.
  const double x = generator->stats().mean_throughput(sim::from_seconds(30.0),
                                                      sim::from_seconds(120.0));
  metrics::Welford rt;
  for (const auto& bucket : generator->stats().response_time_series().buckets()) {
    if (bucket.start < sim::from_seconds(30.0)) continue;
    rt.merge(bucket.stat);
  }
  EXPECT_NEAR(x * rt.mean(), static_cast<double>(users), 0.08 * users) << "users=" << users;
}

INSTANTIATE_TEST_SUITE_P(LoadSweep, QueueingLawsTest,
                         ::testing::Values(20, 60, 120, 240, 400),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return "users_" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace dcm::core
