// Randomized operation sequences against SlotPool, checked against a
// straightforward reference model. Invariants:
//   * in_use never exceeds capacity at grant time
//   * grants happen in strict FIFO order
//   * no grant is lost and none duplicated
//   * after draining, every acquire was granted exactly once
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "common/rng.h"
#include "ntier/slot_pool.h"
#include "sim/engine.h"

namespace dcm::ntier {
namespace {

class PoolFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PoolFuzzTest, RandomOpSequenceKeepsInvariants) {
  Rng rng(GetParam());
  sim::Engine engine;
  const int initial_capacity = static_cast<int>(rng.uniform_int(1, 8));
  SlotPool pool(engine, "fuzz", initial_capacity);

  std::vector<int> grant_order;      // acquire ids in grant order
  std::deque<int> expected_waiting;  // reference FIFO of ungranted ids
  int next_id = 0;
  int holders = 0;

  // Reconciles grants that happened during the last pool call against the
  // reference FIFO.
  const auto absorb_grants = [&](size_t grants_before) {
    while (grant_order.size() > grants_before) {
      const int granted = grant_order[grants_before];
      ASSERT_FALSE(expected_waiting.empty());
      ASSERT_EQ(granted, expected_waiting.front()) << "FIFO violated";
      expected_waiting.pop_front();
      ++holders;
      ++grants_before;
    }
  };

  for (int step = 0; step < 3000; ++step) {
    if (rng.bernoulli(0.1)) engine.run_for(sim::from_millis(rng.uniform(0.1, 5.0)));

    const double roll = rng.next_double();
    if (roll < 0.45) {
      const int id = next_id++;
      const size_t grants_before = grant_order.size();
      expected_waiting.push_back(id);
      pool.acquire([&grant_order, id] { grant_order.push_back(id); });
      absorb_grants(grants_before);
    } else if (roll < 0.85) {
      if (holders > 0) {
        const size_t grants_before = grant_order.size();
        pool.release();
        --holders;
        absorb_grants(grants_before);
      }
    } else {
      const size_t grants_before = grant_order.size();
      pool.resize(static_cast<int>(rng.uniform_int(1, 10)));
      absorb_grants(grants_before);
    }

    // Global invariants after every step.
    ASSERT_EQ(pool.in_use(), holders);
    ASSERT_EQ(pool.queue_length(), static_cast<int>(expected_waiting.size()));
    ASSERT_LE(pool.in_use(), std::max(pool.capacity(), holders));
    ASSERT_GE(pool.in_use(), 0);
  }

  // Drain: release everything; every queued acquire must eventually grant.
  while (holders > 0) {
    const size_t grants_before = grant_order.size();
    pool.release();
    --holders;
    absorb_grants(grants_before);
  }
  EXPECT_EQ(pool.queue_length(), 0);
  EXPECT_EQ(static_cast<int>(grant_order.size()), next_id);
  for (size_t i = 0; i < grant_order.size(); ++i) {
    EXPECT_EQ(grant_order[i], static_cast<int>(i)) << "grant lost or reordered";
  }
  // Occupancy accounting stayed sane.
  EXPECT_GE(pool.in_use_integral(), 0.0);
  EXPECT_EQ(pool.total_acquired(), static_cast<uint64_t>(next_id));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoolFuzzTest, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34),
                         [](const ::testing::TestParamInfo<uint64_t>& param_info) {
                           return "seed_" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace dcm::ntier
