// Determinism: the whole stack — engine, PS servers, pools, bus,
// controllers, workload generators — must replay bit-identically for the
// same seed, and diverge for different seeds.
#include <gtest/gtest.h>

#include "core/experiment.h"

namespace dcm::core {
namespace {

struct RunDigest {
  uint64_t completed;
  uint64_t errors;
  double mean_throughput;
  double mean_rt;
  double p95_rt;
  size_t action_count;
  std::vector<double> tomcat_vms;

  bool operator==(const RunDigest& other) const {
    return completed == other.completed && errors == other.errors &&
           mean_throughput == other.mean_throughput && mean_rt == other.mean_rt &&
           p95_rt == other.p95_rt && action_count == other.action_count &&
           tomcat_vms == other.tomcat_vms;
  }
};

RunDigest run_digest(uint64_t seed, ControllerSpec::Kind controller_kind) {
  ExperimentConfig config;
  config.hardware = {1, 1, 1};
  config.soft = {1000, 200, 80};
  config.workload = WorkloadSpec::trace_driven(workload::Trace::large_variation(seed), 3.0);
  switch (controller_kind) {
    case ControllerSpec::Kind::kNone:
      config.controller = ControllerSpec::none();
      break;
    case ControllerSpec::Kind::kEc2AutoScale:
      config.controller = ControllerSpec::ec2();
      break;
    case ControllerSpec::Kind::kDcm: {
      control::DcmConfig dcm;
      dcm.app_tier_model = tomcat_reference_model();
      dcm.db_tier_model = mysql_reference_model();
      config.controller = ControllerSpec::dcm_controller(dcm);
      break;
    }
  }
  config.duration_seconds = 200.0;
  config.warmup_seconds = 20.0;
  config.seed = seed;

  const auto result = run_experiment(config);
  RunDigest digest;
  digest.completed = result.completed;
  digest.errors = result.errors;
  digest.mean_throughput = result.mean_throughput;
  digest.mean_rt = result.mean_response_time;
  digest.p95_rt = result.p95_response_time;
  digest.action_count = result.actions.size();
  for (const auto& [t, v] : result.tiers[1].provisioned_vms.mean_series()) {
    digest.tomcat_vms.push_back(v);
  }
  return digest;
}

class DeterminismTest : public ::testing::TestWithParam<ControllerSpec::Kind> {};

TEST_P(DeterminismTest, SameSeedReplaysBitIdentically) {
  const RunDigest first = run_digest(42, GetParam());
  const RunDigest second = run_digest(42, GetParam());
  EXPECT_TRUE(first == second);
}

TEST_P(DeterminismTest, DifferentSeedsDiverge) {
  const RunDigest a = run_digest(42, GetParam());
  const RunDigest b = run_digest(43, GetParam());
  EXPECT_FALSE(a == b);
}

INSTANTIATE_TEST_SUITE_P(Controllers, DeterminismTest,
                         ::testing::Values(ControllerSpec::Kind::kNone,
                                           ControllerSpec::Kind::kEc2AutoScale,
                                           ControllerSpec::Kind::kDcm),
                         [](const ::testing::TestParamInfo<ControllerSpec::Kind>& param_info) {
                           switch (param_info.param) {
                             case ControllerSpec::Kind::kNone:
                               return std::string("uncontrolled");
                             case ControllerSpec::Kind::kEc2AutoScale:
                               return std::string("ec2");
                             case ControllerSpec::Kind::kDcm:
                               return std::string("dcm");
                           }
                           return std::string("unknown");
                         });

}  // namespace
}  // namespace dcm::core
