// Property sweep of the Eq. 7 fitting pipeline over randomly drawn
// parameter sets: for any valid (S0, α, β) with a genuine interior optimum,
// the normalized trainer must recover a curve that reproduces the truth and
// an N_b whose deployed throughput is at the plateau.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "model/trainer.h"

namespace dcm::model {
namespace {

class FitPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FitPropertyTest, RecoversRandomCurves) {
  Rng rng(GetParam());
  // Draw parameters with a real interior knee in [5, 200].
  const double s0 = rng.uniform(1e-3, 5e-2);
  const double nb_true = rng.uniform(5.0, 200.0);
  const double alpha = rng.uniform(0.0, 0.8) * s0;
  const double beta = (s0 - alpha) / (nb_true * nb_true);
  const ServiceTimeParams truth{s0, alpha, beta};

  std::vector<TrainingSample> samples;
  const int max_n = static_cast<int>(nb_true * 3.0) + 10;
  for (int n = 1; n <= max_n; n += std::max(1, max_n / 60)) {
    samples.push_back({static_cast<double>(n), server_throughput(truth, n)});
  }

  const Trainer trainer(1, 1.0);
  const auto trained = trainer.fit_normalized(samples);
  ASSERT_GT(trained.r_squared, 0.999) << "s0=" << s0 << " nb=" << nb_true;

  // Curve agreement everywhere sampled.
  for (const auto& s : samples) {
    const double predicted = trained.model.throughput(s.concurrency);
    EXPECT_NEAR(predicted, s.throughput, s.throughput * 0.02 + 1e-6);
  }
  // Deploying the fitted optimum achieves ≥ 99% of the true peak.
  const double true_peak = server_throughput(truth, nb_true);
  const double at_fitted = server_throughput(truth, trained.optimal_concurrency());
  EXPECT_GT(at_fitted, 0.99 * true_peak) << "fitted N_b=" << trained.optimal_concurrency()
                                         << " true N_b=" << nb_true;
}

TEST_P(FitPropertyTest, KnownS0FitRecoversGammaForRandomScales) {
  Rng rng(GetParam() + 1000);
  const double s0 = rng.uniform(5e-3, 3e-2);
  const double nb_true = rng.uniform(10.0, 80.0);
  const double alpha = rng.uniform(0.1, 0.7) * s0;
  const double beta = (s0 - alpha) / (nb_true * nb_true);
  const double gamma_true = rng.uniform(0.5, 12.0);
  const ConcurrencyModel truth{{s0, alpha, beta}, gamma_true, 1, 1.0};

  std::vector<TrainingSample> samples;
  for (int n = 1; n <= 160; n += 3) {
    samples.push_back({static_cast<double>(n), truth.throughput(n)});
  }
  const Trainer trainer(1, 1.0);
  const auto trained = trainer.fit_with_known_s0(s0, samples);
  EXPECT_NEAR(trained.model.gamma, gamma_true, gamma_true * 0.05);
  const double at_fitted =
      truth.throughput(std::max(1.0, trained.optimal_concurrency()));
  EXPECT_GT(at_fitted, 0.98 * truth.max_throughput());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FitPropertyTest,
                         ::testing::Values(3, 7, 11, 19, 23, 31, 41, 53, 61, 71),
                         [](const ::testing::TestParamInfo<uint64_t>& param_info) {
                           return "seed_" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace dcm::model
