// End-to-end invariants of the tracing layer:
//
//  1. observer effect — enabling tracing, at ANY rate, must leave the core
//     result digest bit-identical to the untraced run (tracing never
//     schedules events, draws randomness, or mutates simulation state);
//  2. replay — the trace itself is deterministic: same seed + same rate
//     twice gives an identical trace digest (span streams, annotations,
//     attribution table).
#include <gtest/gtest.h>

#include <cstdint>

#include "core/experiment.h"
#include "scenario/result_writer.h"

namespace dcm::core {
namespace {

ExperimentConfig base_config(uint64_t seed) {
  ExperimentConfig config;
  // Small app-tier pool: with 60 users against 8 worker threads the app
  // tier queues, so pool-wait spans have nonzero width and show up in the
  // attribution table (zero-width waits are elided from the fold).
  config.soft = {1000, 8, 80};
  config.workload = WorkloadSpec::rubbos(60, /*think_s=*/1.0);
  config.controller = ControllerSpec::ec2();
  config.duration_seconds = 20.0;
  config.warmup_seconds = 5.0;
  config.seed = seed;
  return config;
}

ExperimentResult run_traced(uint64_t seed, bool enabled, double rate) {
  ExperimentConfig config = base_config(seed);
  config.trace.enabled = enabled;
  config.trace.rate = rate;
  return run_experiment(config);
}

TEST(TraceDeterminismTest, TracingAtAnyRateLeavesResultDigestBitIdentical) {
  const ExperimentResult untraced = run_traced(7, false, 1.0);
  const uint64_t baseline = scenario::result_digest(untraced);
  EXPECT_EQ(untraced.trace_report, nullptr);

  for (const double rate : {0.0, 0.25, 1.0}) {
    const ExperimentResult traced = run_traced(7, true, rate);
    EXPECT_EQ(scenario::result_digest(traced), baseline)
        << "tracing at rate " << rate
        << " perturbed the simulation — a hook scheduled an event, drew "
           "randomness, or mutated shared state";
    ASSERT_NE(traced.trace_report, nullptr);
    EXPECT_DOUBLE_EQ(traced.trace_report->spec.rate, rate);
  }
}

TEST(TraceDeterminismTest, SameSeedAndRateReplayTraceExactly) {
  const ExperimentResult first = run_traced(7, true, 0.5);
  const ExperimentResult second = run_traced(7, true, 0.5);
  ASSERT_NE(first.trace_report, nullptr);
  ASSERT_NE(second.trace_report, nullptr);
  EXPECT_GT(first.trace_report->sampled, 0u);
  EXPECT_EQ(scenario::trace_digest(*first.trace_report),
            scenario::trace_digest(*second.trace_report));
}

TEST(TraceDeterminismTest, DifferentSeedsSampleDifferently) {
  const ExperimentResult a = run_traced(7, true, 0.5);
  const ExperimentResult b = run_traced(8, true, 0.5);
  ASSERT_NE(a.trace_report, nullptr);
  ASSERT_NE(b.trace_report, nullptr);
  EXPECT_NE(scenario::trace_digest(*a.trace_report),
            scenario::trace_digest(*b.trace_report));
}

TEST(TraceDeterminismTest, FullRateTracesEveryCompletedRequest) {
  const ExperimentResult result = run_traced(7, true, 1.0);
  ASSERT_NE(result.trace_report, nullptr);
  const auto& report = *result.trace_report;
  EXPECT_GT(report.sampled, 0u);
  EXPECT_GT(report.completed, 0u);
  // Every client completion (warmup included) settled its trace.
  EXPECT_GE(report.sampled, report.finalized);
  EXPECT_GE(report.finalized, report.completed);
  EXPECT_GE(report.completed, result.completed);

  // The attribution table carries the full waterfall vocabulary: every
  // trace crosses the front tier, so pool-wait and service rows exist.
  bool saw_service = false;
  bool saw_pool_wait = false;
  for (const auto& row : report.attribution) {
    if (row.cause == trace::SpanKind::kService) saw_service = true;
    if (row.cause == trace::SpanKind::kPoolWait) saw_pool_wait = true;
    EXPECT_GT(row.traces, 0u);
    EXPECT_GE(row.total_seconds, 0.0);
    EXPECT_GE(row.p99_share, row.p50_share - 1e-12);
  }
  EXPECT_TRUE(saw_service);
  EXPECT_TRUE(saw_pool_wait);
}

TEST(TraceDeterminismTest, RateScalesTheSampleNotTheSimulation) {
  const ExperimentResult full = run_traced(7, true, 1.0);
  const ExperimentResult quarter = run_traced(7, true, 0.25);
  ASSERT_NE(full.trace_report, nullptr);
  ASSERT_NE(quarter.trace_report, nullptr);
  EXPECT_LT(quarter.trace_report->sampled, full.trace_report->sampled);
  EXPECT_GT(quarter.trace_report->sampled, 0u);
  // Both simulations were byte-identical, so completions match exactly.
  EXPECT_EQ(full.completed, quarter.completed);
}

TEST(TraceDeterminismTest, ControllerActionsSurfaceAsAnnotations) {
  // The ec2 controller scales under this load; its actuations must land in
  // the trace report as run-level annotations.
  const ExperimentResult result = run_traced(7, true, 1.0);
  ASSERT_NE(result.trace_report, nullptr);
  EXPECT_EQ(result.trace_report->annotations.size(), result.actions.size());
}

}  // namespace
}  // namespace dcm::core
