// Unit tests for the tracing primitives: deterministic head sampling,
// TraceContext finalize semantics, and the latency-attribution fold.
#include <gtest/gtest.h>

#include <memory>

#include "sim/time.h"
#include "trace/attribution.h"
#include "trace/trace.h"
#include "trace/tracer.h"

namespace dcm::trace {
namespace {

using sim::from_seconds;

TEST(TracerTest, DisabledNeverSamples) {
  Tracer tracer(42, TraceSpec{/*enabled=*/false, /*rate=*/1.0});
  for (uint64_t id = 0; id < 100; ++id) {
    EXPECT_FALSE(tracer.should_sample(id));
    EXPECT_EQ(tracer.maybe_sample(id, 0, 0), nullptr);
  }
  EXPECT_EQ(tracer.sampled(), 0u);
}

TEST(TracerTest, RateOneSamplesEveryRequest) {
  Tracer tracer(42, TraceSpec{true, 1.0});
  for (uint64_t id = 0; id < 100; ++id) EXPECT_TRUE(tracer.should_sample(id));
}

TEST(TracerTest, RateZeroSamplesNothing) {
  Tracer tracer(42, TraceSpec{true, 0.0});
  for (uint64_t id = 0; id < 100; ++id) EXPECT_FALSE(tracer.should_sample(id));
}

TEST(TracerTest, SamplingIsAPureFunctionOfSeedAndId) {
  Tracer a(7, TraceSpec{true, 0.5});
  Tracer b(7, TraceSpec{true, 0.5});
  for (uint64_t id = 0; id < 1000; ++id) {
    EXPECT_EQ(a.should_sample(id), b.should_sample(id)) << "id " << id;
    // Repeated queries on the same tracer answer the same.
    EXPECT_EQ(a.should_sample(id), a.should_sample(id));
  }
}

TEST(TracerTest, SampleFractionTracksRate) {
  Tracer tracer(11, TraceSpec{true, 0.25});
  int hits = 0;
  const int n = 20000;
  for (uint64_t id = 0; id < static_cast<uint64_t>(n); ++id) {
    if (tracer.should_sample(id)) ++hits;
  }
  const double fraction = static_cast<double>(hits) / n;
  EXPECT_NEAR(fraction, 0.25, 0.02);
}

TEST(TracerTest, DifferentSeedsPickDifferentRequests) {
  Tracer a(1, TraceSpec{true, 0.5});
  Tracer b(2, TraceSpec{true, 0.5});
  int differing = 0;
  for (uint64_t id = 0; id < 1000; ++id) {
    if (a.should_sample(id) != b.should_sample(id)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(TracerTest, MaybeSampleRegistersAndKeepsContextsAlive) {
  Tracer tracer(42, TraceSpec{true, 1.0});
  auto ctx = tracer.maybe_sample(17, /*servlet=*/3, from_seconds(1.0));
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(ctx->request_id, 17u);
  EXPECT_EQ(ctx->servlet, 3);
  EXPECT_EQ(ctx->started, from_seconds(1.0));
  EXPECT_EQ(tracer.sampled(), 1u);
  ASSERT_EQ(tracer.traces().size(), 1u);
  EXPECT_EQ(tracer.traces()[0].get(), ctx.get());
}

TEST(TracerTest, AnnotationsRecordInOrder) {
  Tracer tracer(42, TraceSpec{true, 1.0});
  tracer.annotate(from_seconds(5.0), "set_stp", "app 20");
  tracer.annotate(from_seconds(9.0), "crash", "app-0");
  ASSERT_EQ(tracer.annotations().size(), 2u);
  EXPECT_EQ(tracer.annotations()[0].kind, "set_stp");
  EXPECT_EQ(tracer.annotations()[1].detail, "app-0");
}

TEST(TraceContextTest, FinalizeStopsSpanRecording) {
  TraceContext ctx;
  ctx.add_span(SpanKind::kPoolWait, 1, from_seconds(1.0), from_seconds(2.0));
  EXPECT_EQ(ctx.spans.size(), 1u);
  ctx.finalize(from_seconds(3.0), /*success=*/true);
  EXPECT_TRUE(ctx.finalized);
  EXPECT_TRUE(ctx.ok);
  EXPECT_EQ(ctx.finished, from_seconds(3.0));
  // Late responses from settled attempts still try to record — dropped.
  ctx.add_span(SpanKind::kService, 1, from_seconds(3.0), from_seconds(4.0));
  EXPECT_EQ(ctx.spans.size(), 1u);
}

TEST(TraceContextTest, FinalizeIsIdempotent) {
  TraceContext ctx;
  ctx.finalize(from_seconds(2.0), true);
  ctx.finalize(from_seconds(9.0), false);  // must not overwrite
  EXPECT_EQ(ctx.finished, from_seconds(2.0));
  EXPECT_TRUE(ctx.ok);
}

TEST(SpanKindTest, NamesAreStable) {
  EXPECT_STREQ(span_kind_name(SpanKind::kThink), "think");
  EXPECT_STREQ(span_kind_name(SpanKind::kLbPick), "lb_pick");
  EXPECT_STREQ(span_kind_name(SpanKind::kPoolWait), "pool_wait");
  EXPECT_STREQ(span_kind_name(SpanKind::kConnWait), "conn_wait");
  EXPECT_STREQ(span_kind_name(SpanKind::kService), "service");
  EXPECT_STREQ(span_kind_name(SpanKind::kCpuWait), "cpu_wait");
  EXPECT_STREQ(span_kind_name(SpanKind::kDownstream), "downstream");
  EXPECT_STREQ(span_kind_name(SpanKind::kBackoff), "backoff");
  EXPECT_STREQ(span_kind_name(SpanKind::kTimeoutWait), "timeout_wait");
}

TEST(SpanKindTest, LeafCausesExcludeContainersAndMarkers) {
  EXPECT_TRUE(is_leaf_cause(SpanKind::kPoolWait));
  EXPECT_TRUE(is_leaf_cause(SpanKind::kConnWait));
  EXPECT_TRUE(is_leaf_cause(SpanKind::kService));
  EXPECT_TRUE(is_leaf_cause(SpanKind::kCpuWait));
  EXPECT_TRUE(is_leaf_cause(SpanKind::kBackoff));
  EXPECT_TRUE(is_leaf_cause(SpanKind::kTimeoutWait));
  EXPECT_FALSE(is_leaf_cause(SpanKind::kThink));      // precedes the request
  EXPECT_FALSE(is_leaf_cause(SpanKind::kLbPick));     // zero-width marker
  EXPECT_FALSE(is_leaf_cause(SpanKind::kDownstream));  // container
}

// One trace: 1 s total, 0.6 s app-tier pool wait, 0.4 s app-tier service.
// kDownstream / kLbPick / kThink spans must not contribute rows.
TEST(AttributionTest, FoldsLeafCausesIntoShares) {
  TraceContext ctx;
  ctx.started = from_seconds(10.0);
  ctx.add_span(SpanKind::kThink, kClientTier, from_seconds(8.0), from_seconds(10.0));
  ctx.add_span(SpanKind::kLbPick, 0, from_seconds(10.0), from_seconds(10.0), 2.0);
  ctx.add_span(SpanKind::kDownstream, 0, from_seconds(10.0), from_seconds(11.0));
  ctx.add_span(SpanKind::kPoolWait, 1, from_seconds(10.0), from_seconds(10.6));
  ctx.add_span(SpanKind::kService, 1, from_seconds(10.6), from_seconds(11.0), 0.4);
  ctx.finalize(from_seconds(11.0), true);

  LatencyAttribution attribution;
  attribution.add(ctx);
  EXPECT_EQ(attribution.trace_count(), 1u);

  const auto rows = attribution.rows();
  ASSERT_EQ(rows.size(), 2u);  // only the two leaf causes
  // Sorted by (tier, cause): pool_wait before service at tier 1.
  EXPECT_EQ(rows[0].tier, 1);
  EXPECT_EQ(rows[0].cause, SpanKind::kPoolWait);
  EXPECT_EQ(rows[0].traces, 1u);
  EXPECT_NEAR(rows[0].total_seconds, 0.6, 1e-9);
  EXPECT_NEAR(rows[0].mean_seconds, 0.6, 1e-9);
  EXPECT_NEAR(rows[0].p50_share, 0.6, 1e-9);
  EXPECT_NEAR(rows[0].p99_share, 0.6, 1e-9);
  EXPECT_EQ(rows[1].cause, SpanKind::kService);
  EXPECT_NEAR(rows[1].p50_share, 0.4, 1e-9);
}

TEST(AttributionTest, IgnoresUnfinalizedAndFailedTraces) {
  LatencyAttribution attribution;

  TraceContext open;  // never settled
  open.started = 0;
  open.add_span(SpanKind::kService, 0, 0, from_seconds(1.0));
  attribution.add(open);

  TraceContext failed;
  failed.started = 0;
  failed.add_span(SpanKind::kService, 0, 0, from_seconds(1.0));
  failed.finalize(from_seconds(1.0), /*success=*/false);
  attribution.add(failed);

  EXPECT_EQ(attribution.trace_count(), 0u);
  EXPECT_TRUE(attribution.rows().empty());
}

TEST(AttributionTest, NearestRankTailPicksTheWorstTrace) {
  LatencyAttribution attribution;
  // 9 traces with a 10% pool-wait share, one with a 90% share.
  for (int i = 0; i < 10; ++i) {
    const double wait = (i == 9) ? 0.9 : 0.1;
    TraceContext ctx;
    ctx.started = 0;
    ctx.add_span(SpanKind::kPoolWait, 0, 0, from_seconds(wait));
    ctx.add_span(SpanKind::kService, 0, from_seconds(wait), from_seconds(1.0));
    ctx.finalize(from_seconds(1.0), true);
    attribution.add(ctx);
  }
  const auto rows = attribution.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].cause, SpanKind::kPoolWait);
  EXPECT_NEAR(rows[0].p50_share, 0.1, 1e-9);
  EXPECT_NEAR(rows[0].p99_share, 0.9, 1e-9);
}

TEST(AttributionTest, ReportOverlaysAnnotationsOntoTraces) {
  Tracer tracer(3, TraceSpec{true, 1.0});
  auto ctx = tracer.maybe_sample(1, 0, from_seconds(10.0));
  ASSERT_NE(ctx, nullptr);
  ctx->add_span(SpanKind::kService, 0, from_seconds(10.0), from_seconds(12.0));
  ctx->finalize(from_seconds(12.0), true);
  tracer.annotate(from_seconds(5.0), "set_stp", "before the trace");
  tracer.annotate(from_seconds(11.0), "scale_out", "inside the trace");
  tracer.annotate(from_seconds(20.0), "crash", "after the trace");

  auto report = build_report(tracer);
  EXPECT_EQ(report->sampled, 1u);
  EXPECT_EQ(report->finalized, 1u);
  EXPECT_EQ(report->completed, 1u);
  ASSERT_EQ(report->traces.size(), 1u);
  EXPECT_EQ(report->annotations.size(), 3u);

  const auto overlapping = annotations_overlapping(*report, *report->traces[0]);
  ASSERT_EQ(overlapping.size(), 1u);
  EXPECT_EQ(overlapping[0].kind, "scale_out");
}

TEST(AttributionTest, ReportCountsUnfinishedTracesAsSampledOnly) {
  Tracer tracer(3, TraceSpec{true, 1.0});
  auto done = tracer.maybe_sample(1, 0, 0);
  done->finalize(from_seconds(1.0), true);
  auto failed = tracer.maybe_sample(2, 0, 0);
  failed->finalize(from_seconds(1.0), false);
  tracer.maybe_sample(3, 0, 0);  // still in flight when the run ends

  auto report = build_report(tracer);
  EXPECT_EQ(report->sampled, 3u);
  EXPECT_EQ(report->finalized, 2u);
  EXPECT_EQ(report->completed, 1u);
  EXPECT_EQ(report->traces.size(), 2u);  // finalized only
}

}  // namespace
}  // namespace dcm::trace
