// End-to-end service-graph topology runs: the diamond deployment where the
// controller's node ranking must agree with the per-edge trace attribution,
// plus fan-out and deep-chain shapes that exercise the per-request inline
// storage past the legacy 3-tier-chain bounds.
#include <gtest/gtest.h>

#include <memory>

#include "bus/broker.h"
#include "control/dcm_controller.h"
#include "core/experiment.h"
#include "core/topologies.h"
#include "ntier/monitor_agent.h"
#include "sim/engine.h"
#include "trace/attribution.h"
#include "trace/tracer.h"
#include "workload/closed_loop.h"
#include "workload/servlet.h"

namespace dcm {
namespace {

core::TopologySpec diamond_spec() {
  core::TopologySpec spec;
  spec.kind = core::TopologySpec::Kind::kGraph;
  spec.nodes = {{"apache", "web"}, {"tomcat", "app"}, {"memcache", "cache"}, {"mysql", "db"}};
  spec.edges = {{"apache", "tomcat", 1, false, false},
                {"tomcat", "memcache", 1, false, false},
                {"tomcat", "mysql", 0, true, true}};
  return spec;
}

// The ISSUE's acceptance scenario: on the diamond with 3 app VMs the DB
// (V = q = 2) caps throughput at 1/(2·S0_db) ≈ 70 req/s, well under the app
// nodes' 3/S0_app ≈ 106. DCM's operational-law node ranking and the trace
// report's per-edge waterfall observe that same fact through entirely
// different instruments — the static model vs measured span wall-clock —
// and must name the same node.
TEST(GraphTopologyTest, DiamondBottleneckRankingAgreesWithEdgeAttribution) {
  sim::Engine engine;
  ntier::NTierApp app(engine,
                      core::build_service_graph(diamond_spec(), {1, 3, 1}, {1000, 100, 80}),
                      core::experiment_stream_seed(1, core::SeedStream::kTopology));
  const ntier::ServiceGraph& graph = *app.graph();
  bus::Broker broker;
  ntier::MonitorFleet fleet(engine, app, broker);

  const workload::ServletCatalog catalog =
      workload::ServletCatalog::browse_only_mix(core::kDbVisitRatio);
  auto generator = workload::make_rubbos_clients(
      engine, app, workload::graph_request_factory(catalog, graph), 300, 3.0,
      core::experiment_stream_seed(1, core::SeedStream::kWorkload));

  trace::Tracer tracer(core::experiment_stream_seed(1, core::SeedStream::kTrace),
                       {true, 1.0});
  generator->set_tracer(&tracer);

  control::DcmConfig dcm;
  dcm.app_tier_model = core::tomcat_reference_model();
  dcm.db_tier_model = core::mysql_reference_model();
  dcm.app_tier = 1;  // tomcat
  dcm.db_tier = 3;   // mysql (what experiment.cpp derives from the roles)
  control::DcmController controller(engine, app, broker, dcm);

  // The static ranking of the deployed allocation, before the controller
  // acts on it: mysql (node 3) has the smallest capacity.
  const model::BottleneckReport ranking = controller.rank_graph_nodes();
  ASSERT_EQ(ranking.tier_capacity.size(), graph.node_count());
  EXPECT_EQ(ranking.bottleneck_tier, 3);
  EXPECT_LT(ranking.tier_capacity[3], ranking.tier_capacity[1]);

  controller.start();
  generator->start();
  engine.run_until(sim::from_seconds(120.0));

  // The controller spent its scale-outs on the ranked node.
  int mysql_scale_outs = 0;
  for (const auto& action : controller.log().actions()) {
    if (action.action == "scale_out" && action.tier == "mysql") ++mysql_scale_outs;
  }
  EXPECT_GT(mysql_scale_outs, 0);

  // The measured waterfall: among tomcat's two branches, the mysql edge must
  // own the dominant p99 share of end-to-end latency.
  const auto report = trace::build_report(tracer);
  ASSERT_GT(report->completed, 0u);
  const trace::EdgeAttributionRow* dominant = nullptr;
  for (const auto& row : report->edge_attribution) {
    if (row.tier != 1) continue;  // tomcat's out-edges only
    if (dominant == nullptr || row.p99_share > dominant->p99_share) dominant = &row;
  }
  ASSERT_NE(dominant, nullptr);
  // Both instruments name the same node.
  EXPECT_EQ(graph.edge(static_cast<size_t>(dominant->edge)).to, ranking.bottleneck_tier);
}

// Fan-out wider than the legacy chain's 3 hops: five concurrent branches
// joined synchronously. Regression for the per-request inline arrays
// (request.h) — a plan this wide overflowed the old per-tier sizing.
TEST(GraphTopologyTest, FiveWayFanOutJoinsCleanly) {
  core::TopologySpec spec;
  spec.kind = core::TopologySpec::Kind::kGraph;
  spec.nodes = {{"web", "web"},    {"hub", "app"},    {"c1", "cache"}, {"c2", "cache"},
                {"c3", "cache"},   {"c4", "cache"},   {"mysql", "db"}};
  spec.edges = {{"web", "hub", 1, false, false}, {"hub", "c1", 1, false, false},
                {"hub", "c2", 2, false, false},  {"hub", "c3", 1, false, false},
                {"hub", "c4", 1, false, false},  {"hub", "mysql", 0, true, true}};

  sim::Engine engine;
  ntier::NTierApp app(engine, core::build_service_graph(spec, {1, 1, 1}, {1000, 100, 80}), 7);
  const workload::ServletCatalog catalog =
      workload::ServletCatalog::browse_only_mix(core::kDbVisitRatio);
  auto generator = workload::make_rubbos_clients(
      engine, app, workload::graph_request_factory(catalog, *app.graph()), 50, 3.0, 11);
  generator->start();
  engine.run_until(sim::from_seconds(60.0));

  EXPECT_GT(generator->stats().completed(), 100u);
  EXPECT_EQ(generator->stats().errors(), 0u);
  // Every branch actually carried traffic.
  for (size_t i = 2; i < app.tier_count(); ++i) {
    EXPECT_GT(app.tier(i).completed(), 0u) << app.tier(i).name();
  }
}

// A 10-node chain graph — deeper than the legacy kMaxTiers=8 inline arrays.
TEST(GraphTopologyTest, TenNodeChainRunsEndToEnd) {
  core::TopologySpec spec;
  spec.kind = core::TopologySpec::Kind::kGraph;
  spec.nodes.push_back({"front", "web"});
  for (int i = 1; i < 9; ++i) {
    spec.nodes.push_back({"svc" + std::to_string(i), "app"});
  }
  spec.nodes.push_back({"store", "db"});
  for (int i = 0; i < 9; ++i) {
    spec.edges.push_back({spec.nodes[static_cast<size_t>(i)].name,
                          spec.nodes[static_cast<size_t>(i + 1)].name, 1, false, false});
  }

  sim::Engine engine;
  ntier::NTierApp app(engine, core::build_service_graph(spec, {1, 1, 1}, {1000, 100, 80}), 3);
  EXPECT_TRUE(app.graph()->is_chain());
  const workload::ServletCatalog catalog =
      workload::ServletCatalog::browse_only_mix(core::kDbVisitRatio);
  auto generator = workload::make_rubbos_clients(
      engine, app, workload::graph_request_factory(catalog, *app.graph()), 30, 3.0, 5);
  generator->start();
  engine.run_until(sim::from_seconds(60.0));

  EXPECT_GT(generator->stats().completed(), 100u);
  EXPECT_EQ(generator->stats().errors(), 0u);
  EXPECT_GT(app.tier(9).completed(), 0u);
}

}  // namespace
}  // namespace dcm
