// End-to-end Fig. 2(a) shape check: a JMeter closed loop stressing the
// MySQL-only deployment reproduces the rise / knee-near-40 / collapse curve.
#include <gtest/gtest.h>

#include "core/topologies.h"
#include "sim/engine.h"
#include "workload/closed_loop.h"

namespace dcm {
namespace {

double mysql_only_throughput(int concurrency, double seconds = 40.0) {
  sim::Engine engine;
  ntier::NTierApp app(engine, core::mysql_only_app_config(/*worker_cap=*/concurrency));
  const workload::ServletCatalog catalog = workload::ServletCatalog::browse_only_mix();
  workload::ClosedLoopConfig config;
  config.users = concurrency;
  config.seed = 1000 + static_cast<uint64_t>(concurrency);
  workload::ClosedLoopGenerator generator(engine, app, core::mysql_query_factory(catalog),
                                          std::move(config));
  generator.start();
  const double warmup = 5.0;
  engine.run_until(sim::from_seconds(seconds));
  return generator.stats().mean_throughput(sim::from_seconds(warmup),
                                           sim::from_seconds(seconds));
}

TEST(SingleTierShapeTest, ThroughputRisesUpToTheKnee) {
  // With Table I's fitted α ≈ 0.7·S0 the rise from low concurrency to the
  // knee is modest but monotone (Eq. 7: X(1)=139, X(5)=183, X(40)=194 qps).
  const double x1 = mysql_only_throughput(1);
  const double x5 = mysql_only_throughput(5);
  const double x40 = mysql_only_throughput(40);
  EXPECT_GT(x5, x1 * 1.2);
  EXPECT_GT(x40, x5 * 1.03);
}

TEST(SingleTierShapeTest, ThroughputCollapsesBeyondTheKnee) {
  const double x40 = mysql_only_throughput(40);
  const double x160 = mysql_only_throughput(160);
  const double x600 = mysql_only_throughput(600, 60.0);
  EXPECT_LT(x160, 0.65 * x40);
  EXPECT_LT(x600, 0.25 * x40);
}

TEST(SingleTierShapeTest, ReasonableBandBetween20And80) {
  // Paper: "MySQL achieves reasonable performance when the request
  // processing concurrency is between 20 to 80."
  const double peak = mysql_only_throughput(40);
  EXPECT_GT(mysql_only_throughput(20), 0.7 * peak);
  EXPECT_GT(mysql_only_throughput(80), 0.7 * peak);
}

TEST(SingleTierShapeTest, MeasuredCurveTracksEq7Prediction) {
  const ntier::CpuModelConfig cpu = core::mysql_cpu_model();
  for (const int n : {10, 36, 60}) {
    const double measured = mysql_only_throughput(n);
    const double predicted = cpu.throughput_at(n);
    EXPECT_NEAR(measured, predicted, predicted * 0.08) << "concurrency " << n;
  }
}

}  // namespace
}  // namespace dcm
