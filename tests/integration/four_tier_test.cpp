// The paper's alternative 4-tier deployment (web/app/db-lb/db), expressed
// as a degenerate chain graph (rubbos_4tier_graph).
#include <gtest/gtest.h>

#include "bus/broker.h"
#include "control/dcm_controller.h"
#include "core/topologies.h"
#include "ntier/monitor_agent.h"
#include "workload/closed_loop.h"

namespace dcm {
namespace {

std::unique_ptr<workload::ClosedLoopGenerator> make_4tier_clients(
    sim::Engine& engine, ntier::NTierApp& app, const workload::ServletCatalog& catalog,
    int users) {
  workload::ClosedLoopConfig config;
  config.users = users;
  config.think_time = sim::make_exponential(3.0);
  config.seed = 77;
  return std::make_unique<workload::ClosedLoopGenerator>(
      engine, app, workload::graph_request_factory(catalog, *app.graph()),
      std::move(config));
}

TEST(FourTierTest, TopologyHasFourTiersWithLbBetweenAppAndDb) {
  sim::Engine engine;
  ntier::NTierApp app(engine, core::rubbos_4tier_graph({1, 1, 1}, {1000, 100, 80}), 1);
  ASSERT_EQ(app.tier_count(), 4u);
  EXPECT_EQ(app.tier(0).name(), "apache");
  EXPECT_EQ(app.tier(1).name(), "tomcat");
  EXPECT_EQ(app.tier(2).name(), "haproxy");
  EXPECT_EQ(app.tier(3).name(), "mysql");
  // The chain-shaped graph is recognized as the degenerate DAG.
  ASSERT_NE(app.graph(), nullptr);
  EXPECT_TRUE(app.graph()->is_chain());
  ASSERT_EQ(app.graph()->edge_count(), 3u);
  EXPECT_TRUE(app.graph()->edge(1).managed);
}

TEST(FourTierTest, RequestsFlowThroughAllFourTiers) {
  sim::Engine engine;
  ntier::NTierApp app(engine, core::rubbos_4tier_graph({1, 1, 1}, {1000, 100, 80}), 1);
  const workload::ServletCatalog catalog = workload::ServletCatalog::browse_only_mix();
  auto generator = make_4tier_clients(engine, app, catalog, 100);
  generator->start();
  engine.run_until(sim::from_seconds(60.0));

  const auto completed = generator->stats().completed();
  EXPECT_GT(completed, 1000u);
  EXPECT_EQ(generator->stats().errors(), 0u);
  // Forced flow: LB and DB both see ~V_db sub-requests per HTTP request.
  EXPECT_NEAR(static_cast<double>(app.tier(2).completed()) / completed,
              catalog.mean_db_queries(), 0.1);
  EXPECT_NEAR(static_cast<double>(app.tier(3).completed()) / completed,
              catalog.mean_db_queries(), 0.1);
}

TEST(FourTierTest, LbTierAddsNegligibleLatency) {
  // Same workload on 3-tier and 4-tier: the extra hop costs microseconds.
  const workload::ServletCatalog catalog = workload::ServletCatalog::browse_only_mix();
  double rt3, rt4;
  {
    sim::Engine engine;
    ntier::NTierApp app(engine, core::rubbos_app_config({1, 1, 1}, {1000, 100, 80}));
    auto generator = workload::make_rubbos_clients(engine, app, catalog, 100, 3.0, 77);
    generator->start();
    engine.run_until(sim::from_seconds(90.0));
    rt3 = generator->stats().response_time_stats().mean();
  }
  {
    sim::Engine engine;
    ntier::NTierApp app(engine, core::rubbos_4tier_graph({1, 1, 1}, {1000, 100, 80}), 1);
    auto generator = make_4tier_clients(engine, app, catalog, 100);
    generator->start();
    engine.run_until(sim::from_seconds(90.0));
    rt4 = generator->stats().response_time_stats().mean();
  }
  EXPECT_NEAR(rt4, rt3, rt3 * 0.1 + 0.002);
}

TEST(FourTierTest, DcmControlsTheDbTierThroughTheLb) {
  sim::Engine engine;
  ntier::NTierApp app(engine, core::rubbos_4tier_graph({1, 1, 1}, {1000, 200, 80}), 1);
  bus::Broker broker;
  ntier::MonitorFleet fleet(engine, app, broker);

  control::DcmConfig dcm;
  dcm.app_tier_model = core::tomcat_reference_model();
  dcm.db_tier_model = core::mysql_reference_model();
  dcm.app_tier = 1;
  dcm.db_tier = 3;  // mysql sits behind the LB tier
  control::DcmController controller(engine, app, broker, dcm);
  controller.start();

  // The APP-agent deployed the optima at construction.
  EXPECT_EQ(app.tier(1).current_thread_pool_size(), controller.app_tier_nb());
  EXPECT_EQ(app.tier(1).current_downstream_connections(), controller.db_tier_nb());

  // Under saturating load the managed deployment keeps DB concurrency at
  // the optimum even though requests pass through the LB tier.
  const workload::ServletCatalog catalog = workload::ServletCatalog::browse_only_mix();
  auto generator = make_4tier_clients(engine, app, catalog, 500);
  generator->start();
  int max_db_conc = 0;
  engine.schedule_periodic(sim::kNanosPerSecond, [&] {
    max_db_conc = std::max(max_db_conc, app.tier(3).total_in_flight());
  });
  engine.run_until(sim::from_seconds(60.0));
  EXPECT_LE(max_db_conc, controller.db_tier_nb() * app.tier(3).active_vm_count() + 2);
}

}  // namespace
}  // namespace dcm
