// Three-tier equilibria: the Fig. 2(b) / Fig. 4 phenomena.
//
// These are the paper's central motivating observations:
//   * 1/1/1 with the model-optimal Tomcat pool (≈20) beats the default 100
//     at saturation (Fig. 4a).
//   * Scaling to 1/2/1 with default pools doubles the concurrency hitting
//     MySQL (160) and UNDERPERFORMS the original 1/1/1 at high load
//     (Fig. 2b), while re-tuning the DB connection pools to 20 each makes
//     1/2/1 strictly better (Fig. 4b).
#include <gtest/gtest.h>

#include "core/experiment.h"

namespace dcm::core {
namespace {

double saturated_throughput(HardwareConfig hw, SoftAllocation soft, int users,
                            double seconds = 120.0) {
  ExperimentConfig config;
  config.hardware = hw;
  config.soft = soft;
  config.workload = WorkloadSpec::rubbos(users);
  config.controller = ControllerSpec::none();
  config.duration_seconds = seconds;
  config.warmup_seconds = 40.0;
  return run_experiment(config).mean_throughput;
}

constexpr int kSaturatingUsers = 400;

TEST(ThreeTierTest, LightLoadThroughputMatchesOfferedLoad) {
  // 60 users, 3 s think, fast responses ⇒ ~20 req/s regardless of pools.
  const double x = saturated_throughput({1, 1, 1}, {1000, 100, 80}, 60);
  EXPECT_NEAR(x, 60.0 / 3.0, 2.5);
}

TEST(ThreeTierTest, OptimalTomcatPoolBeatsDefaultAtSaturation) {
  // Fig. 4(a): 1000/20/80 outperforms 1000/100/80 by a clear margin.
  const double x_default = saturated_throughput({1, 1, 1}, {1000, 100, 80}, kSaturatingUsers);
  const double x_optimal = saturated_throughput({1, 1, 1}, {1000, 20, 80}, kSaturatingUsers);
  EXPECT_GT(x_optimal, x_default * 1.10);
}

TEST(ThreeTierTest, ScaleOutWithDefaultPoolsDegradesBelowOriginal) {
  // Fig. 2(b): 1/2/1 with two 80-connection pools floods MySQL (160 > knee)
  // and ends up *worse* than the unscaled 1/1/1 at high load.
  const double x_111 = saturated_throughput({1, 1, 1}, {1000, 100, 80}, kSaturatingUsers);
  const double x_121_default = saturated_throughput({1, 2, 1}, {1000, 100, 80}, kSaturatingUsers);
  EXPECT_LT(x_121_default, x_111);
}

TEST(ThreeTierTest, RetunedScaleOutOutperformsBoth) {
  // Fig. 4(b): 1/2/1 with per-Tomcat DBConnP = 20 (total 40 ≈ MySQL knee)
  // beats both the 1/1/1 and the default-pool 1/2/1.
  const double x_111 = saturated_throughput({1, 1, 1}, {1000, 100, 80}, kSaturatingUsers);
  const double x_121_default = saturated_throughput({1, 2, 1}, {1000, 100, 80}, kSaturatingUsers);
  const double x_121_retuned = saturated_throughput({1, 2, 1}, {1000, 100, 20}, kSaturatingUsers);
  EXPECT_GT(x_121_retuned, x_111 * 1.15);
  EXPECT_GT(x_121_retuned, x_121_default * 1.3);
}

TEST(ThreeTierTest, ResponseTimeGrowsWithClosedLoopOverload) {
  ExperimentConfig config;
  config.hardware = {1, 1, 1};
  config.soft = {1000, 100, 80};
  config.controller = ControllerSpec::none();
  config.duration_seconds = 120.0;
  config.warmup_seconds = 40.0;

  config.workload = WorkloadSpec::rubbos(60);
  const auto light = run_experiment(config);
  config.workload = WorkloadSpec::rubbos(kSaturatingUsers);
  const auto heavy = run_experiment(config);
  EXPECT_GT(heavy.mean_response_time, 4.0 * light.mean_response_time);
}

TEST(ThreeTierTest, NoRequestsAreLostInNormalOperation) {
  ExperimentConfig config;
  config.hardware = {1, 1, 1};
  config.soft = {1000, 100, 80};
  config.workload = WorkloadSpec::rubbos(200);
  config.controller = ControllerSpec::none();
  config.duration_seconds = 60.0;
  config.warmup_seconds = 10.0;
  const auto result = run_experiment(config);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.completed, 0u);
}

}  // namespace
}  // namespace dcm::core
