// End-to-end chaos: the canonical chaos-resilience scenario under the SAME
// deterministic fault schedule, with and without the resilience stack. The
// resilient run must sustain strictly higher goodput and a strictly lower
// error rate — the acceptance bar for the whole resilience subsystem.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "scenario/registry.h"
#include "scenario/result_writer.h"
#include "scenario/sweep.h"

namespace dcm {
namespace {

std::vector<sim::SimTime> injection_times(const core::ExperimentResult& result) {
  std::vector<sim::SimTime> times;
  for (const auto& entry : result.fault_log) {
    // Injector entries only — recovery/tier entries differ by design.
    if (entry.kind == "vm_crash" || entry.kind == "vm_slowdown" ||
        entry.kind == "telemetry_loss" || entry.kind == "agent_silence" ||
        entry.kind == "skipped") {
      times.push_back(entry.at);
    }
  }
  return times;
}

TEST(ChaosResilienceTest, ResilientRunBeatsBaselineUnderSameFaultSchedule) {
  const scenario::Scenario scenario = scenario::get_scenario("chaos-resilience");
  core::ExperimentConfig resilient = scenario.experiment();
  ASSERT_TRUE(resilient.resilience.enabled);
  ASSERT_TRUE(resilient.faults.any_enabled());
  core::ExperimentConfig baseline = resilient;
  baseline.resilience.enabled = false;

  const core::ExperimentResult with = core::run_experiment(resilient);
  const core::ExperimentResult without = core::run_experiment(baseline);

  // Identical root seed → identical fault schedule: the comparison is paired.
  EXPECT_EQ(injection_times(with), injection_times(without));
  EXPECT_FALSE(with.fault_log.empty());

  // The acceptance criterion: strictly better goodput AND error rate.
  EXPECT_GT(with.goodput, without.goodput);
  EXPECT_LT(with.error_rate, without.error_rate);

  // The mechanisms actually engaged (not a vacuous win).
  EXPECT_GT(with.timeouts, 0u);
  EXPECT_GT(with.retries, 0u);
  EXPECT_EQ(without.timeouts, 0u);
  EXPECT_EQ(without.retries, 0u);
}

TEST(ChaosResilienceTest, ChaosRunIsBitReproducible) {
  scenario::Scenario scenario = scenario::get_scenario("chaos-resilience");
  scenario.duration_seconds = 120.0;
  const core::ExperimentConfig config = scenario.experiment();
  const uint64_t first = scenario::result_digest(core::run_experiment(config));
  const uint64_t second = scenario::result_digest(core::run_experiment(config));
  EXPECT_EQ(first, second);
}

TEST(ChaosResilienceTest, SweepDigestInvariantAcrossThreadCounts) {
  scenario::SweepPlan plan;
  plan.base = scenario::get_scenario("chaos-resilience");
  plan.base.duration_seconds = 120.0;
  plan.axes.push_back(scenario::parse_axis("resilience.enabled=true,false"));
  plan.seed_policy = scenario::SeedPolicy::kFixed;

  const uint64_t serial =
      scenario::sweep_digest(scenario::SweepRunner(plan, /*jobs=*/1).run());
  const uint64_t parallel =
      scenario::sweep_digest(scenario::SweepRunner(plan, /*jobs=*/4).run());
  EXPECT_EQ(serial, parallel)
      << "chaos sweep digest diverged across --jobs — fault injection or "
         "resilience bookkeeping is reading shared mutable state";
}

}  // namespace
}  // namespace dcm
