// The headline result (Fig. 5): under the Large-Variation bursty trace, DCM
// keeps response time stable while hardware-only EC2-AutoScale suffers
// second-scale response-time spikes and throughput drops around its scaling
// activity.
#include <gtest/gtest.h>

#include "core/experiment.h"

namespace dcm::core {
namespace {

ExperimentResult run_with(ControllerSpec controller, uint64_t seed = 1) {
  ExperimentConfig config;
  config.hardware = {1, 1, 1};
  // The paper starts Fig. 5 from the default allocation (Sec. V-B uses
  // 1000-200-x; we keep the default DBConnP 80 so the narrated 80→160
  // concurrency jump occurs on the baseline's first Tomcat scale-out).
  config.soft = {1000, 200, 80};
  config.workload = WorkloadSpec::trace_driven(workload::Trace::large_variation());
  config.controller = std::move(controller);
  config.duration_seconds = 700.0;
  config.warmup_seconds = 30.0;
  config.seed = seed;
  return run_experiment(config);
}

ControllerSpec dcm_spec() {
  control::DcmConfig dcm;
  dcm.app_tier_model = tomcat_reference_model();
  dcm.db_tier_model = mysql_reference_model();
  return ControllerSpec::dcm_controller(dcm);
}

class DcmVsEc2Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ec2_ = new ExperimentResult(run_with(ControllerSpec::ec2()));
    dcm_ = new ExperimentResult(run_with(dcm_spec()));
  }
  static void TearDownTestSuite() {
    delete ec2_;
    delete dcm_;
    ec2_ = nullptr;
    dcm_ = nullptr;
  }
  static ExperimentResult* ec2_;
  static ExperimentResult* dcm_;
};

ExperimentResult* DcmVsEc2Test::ec2_ = nullptr;
ExperimentResult* DcmVsEc2Test::dcm_ = nullptr;

TEST_F(DcmVsEc2Test, BothControllersScaleOut) {
  EXPECT_GE(ec2_->action_count("scale_out"), 2);
  EXPECT_GE(dcm_->action_count("scale_out"), 2);
}

TEST_F(DcmVsEc2Test, Ec2SuffersSecondScaleResponseTimeSpikes) {
  // Paper Fig. 5(b): spikes over 1 second.
  EXPECT_GT(ec2_->max_response_time, 1.0);
}

TEST_F(DcmVsEc2Test, DcmStabilizesResponseTime) {
  EXPECT_LT(dcm_->max_response_time, ec2_->max_response_time * 0.8);
  EXPECT_LT(dcm_->mean_response_time, ec2_->mean_response_time);
}

TEST_F(DcmVsEc2Test, DcmP95IsLower) {
  EXPECT_LT(dcm_->p95_response_time, ec2_->p95_response_time);
}

TEST_F(DcmVsEc2Test, DcmLosesNoThroughput) {
  // Same offered trace; DCM must complete at least as much work (within a
  // small tolerance for closed-loop self-throttling noise).
  EXPECT_GE(static_cast<double>(dcm_->completed),
            0.98 * static_cast<double>(ec2_->completed));
}

TEST_F(DcmVsEc2Test, DcmAdaptsSoftResources) {
  EXPECT_GE(dcm_->action_count("set_stp") + dcm_->action_count("set_conns"), 2);
  // Hardware-only baseline never touches pools.
  EXPECT_EQ(ec2_->action_count("set_stp"), 0);
  EXPECT_EQ(ec2_->action_count("set_conns"), 0);
}

TEST_F(DcmVsEc2Test, NoErrorsEitherWay) {
  EXPECT_EQ(ec2_->errors, 0u);
  EXPECT_EQ(dcm_->errors, 0u);
}

}  // namespace
}  // namespace dcm::core
