// Chaos: VM failures under live load — the system degrades gracefully and
// the controller replaces lost capacity.
#include <gtest/gtest.h>

#include "bus/broker.h"
#include "control/ec2_autoscale.h"
#include "core/topologies.h"
#include "ntier/monitor_agent.h"
#include "workload/closed_loop.h"

namespace dcm {
namespace {

TEST(ChaosTest, TierAbsorbsSingleVmFailure) {
  sim::Engine engine;
  ntier::NTierApp app(engine, core::rubbos_app_config({1, 2, 1}, {1000, 100, 80}));
  const workload::ServletCatalog catalog = workload::ServletCatalog::browse_only_mix();
  // Zero-think closed loop keeps both Tomcats busy at every instant, so the
  // crash is guaranteed to hit in-flight requests.
  auto generator = workload::make_jmeter(engine, app, catalog, 40);
  generator->start();
  engine.run_until(sim::from_seconds(30.0));

  app.tier(1).fail_one();
  engine.run_until(sim::from_seconds(90.0));

  // Some in-flight requests failed at the instant of the crash…
  EXPECT_GT(generator->stats().errors(), 0u);
  EXPECT_LT(generator->stats().errors(), 41u);
  // …but the closed loop keeps clearing work on the survivor afterwards.
  const double x_after = generator->stats().mean_throughput(sim::from_seconds(45.0),
                                                            sim::from_seconds(90.0));
  EXPECT_GT(x_after, 40.0);
}

TEST(ChaosTest, ControllerReplacesFailedCapacity) {
  sim::Engine engine;
  ntier::NTierApp app(engine, core::rubbos_app_config({1, 2, 1}, {1000, 100, 80}));
  bus::Broker broker;
  ntier::MonitorFleet fleet(engine, app, broker);
  control::Ec2AutoScaleController controller(engine, app, broker);
  controller.start();

  const workload::ServletCatalog catalog = workload::ServletCatalog::browse_only_mix();
  // Load sized so ONE tomcat saturates but two are comfortable.
  auto generator = workload::make_rubbos_clients(engine, app, catalog, 350);
  generator->start();
  engine.run_until(sim::from_seconds(60.0));
  ASSERT_EQ(app.tier(1).active_vm_count(), 2);

  app.tier(1).fail_one();
  EXPECT_EQ(app.tier(1).active_vm_count(), 1);
  // The survivor saturates; within a few control periods the controller
  // boots a replacement.
  engine.run_until(sim::from_seconds(200.0));
  EXPECT_GE(app.tier(1).active_vm_count(), 2);
  EXPECT_EQ(app.tier(1).failed_vm_count(), 1);
}

TEST(ChaosTest, RepeatedFailuresDoNotWedgeTheSystem) {
  sim::Engine engine;
  ntier::NTierApp app(engine, core::rubbos_app_config({1, 3, 2}, {1000, 100, 40}));
  const workload::ServletCatalog catalog = workload::ServletCatalog::browse_only_mix();
  auto generator = workload::make_rubbos_clients(engine, app, catalog, 150);
  generator->start();

  // Fail one tomcat at 30 s and one mysql at 60 s.
  engine.schedule_at(sim::from_seconds(30.0), [&] { app.tier(1).fail_one(); });
  engine.schedule_at(sim::from_seconds(60.0), [&] { app.tier(2).fail_one(); });
  engine.run_until(sim::from_seconds(150.0));

  EXPECT_EQ(app.tier(1).failed_vm_count(), 1);
  EXPECT_EQ(app.tier(2).failed_vm_count(), 1);
  // The system still clears work with the survivors.
  const double x = generator->stats().mean_throughput(sim::from_seconds(90.0),
                                                      sim::from_seconds(150.0));
  EXPECT_NEAR(x, 150.0 / 3.0, 6.0);
  // And no requests are stuck: stop the load and drain.
  generator->stop();
  engine.run_until(sim::from_seconds(200.0));
  for (size_t i = 0; i < app.tier_count(); ++i) {
    EXPECT_EQ(app.tier(i).total_in_flight(), 0) << app.tier(i).name();
  }
}

}  // namespace
}  // namespace dcm
