// VM-level scaling mechanics end-to-end: threshold triggers, the 15 s
// preparation period, "quick start slow turn off" hysteresis, and DCM's
// soft-resource re-allocation riding on top.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/experiment.h"

namespace dcm::core {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig config;
  config.hardware = {1, 1, 1};
  config.soft = {1000, 100, 80};
  config.duration_seconds = 240.0;
  config.warmup_seconds = 30.0;
  return config;
}

TEST(ScalingTest, Ec2ScalesOutUnderSustainedOverload) {
  ExperimentConfig config = base_config();
  config.workload = WorkloadSpec::rubbos(400);
  config.controller = ControllerSpec::ec2();
  const auto result = run_experiment(config);
  EXPECT_GE(result.action_count("scale_out"), 1);
  // The Tomcat tier is the 1/1/1 bottleneck, so it must be the first to grow.
  EXPECT_GE(result.action_count("scale_out", "tomcat"), 1);
}

TEST(ScalingTest, NoScalingActionsUnderLightLoad) {
  ExperimentConfig config = base_config();
  config.workload = WorkloadSpec::rubbos(40);
  config.controller = ControllerSpec::ec2();
  const auto result = run_experiment(config);
  EXPECT_EQ(result.action_count("scale_out"), 0);
  // Already at min_vms=1 per tier: no scale-in either.
  EXPECT_EQ(result.action_count("scale_in"), 0);
}

TEST(ScalingTest, ScaleInAfterLoadDrops) {
  // High load then low load: the tier that grew must shrink again, but only
  // after the 3-consecutive-low-periods hysteresis.
  workload::Trace trace(std::vector<int>(
      [] {
        std::vector<int> users(400, 30);
        for (int t = 0; t < 150; ++t) users[static_cast<size_t>(t)] = 400;
        return users;
      }()));
  ExperimentConfig config = base_config();
  config.duration_seconds = 400.0;
  config.workload = WorkloadSpec::trace_driven(trace);
  config.controller = ControllerSpec::ec2();
  const auto result = run_experiment(config);
  EXPECT_GE(result.action_count("scale_out"), 1);
  EXPECT_GE(result.action_count("scale_in"), 1);

  // Scale-ins must lag the load drop by at least 3 control periods (45 s).
  for (const auto& action : result.actions) {
    if (action.action == "scale_in") {
      EXPECT_GE(sim::to_seconds(action.time), 150.0 + 45.0);
    }
  }
}

TEST(ScalingTest, VmCountTimelineReflectsBootDelay) {
  ExperimentConfig config = base_config();
  config.workload = WorkloadSpec::rubbos(400);
  config.controller = ControllerSpec::ec2();
  const auto result = run_experiment(config);

  // Find the first scale-out and check the provisioned count stepped up.
  ASSERT_GE(result.action_count("scale_out", "tomcat"), 1);
  double t_scale = -1.0;
  for (const auto& action : result.actions) {
    if (action.action == "scale_out" && action.tier == "tomcat") {
      t_scale = sim::to_seconds(action.time);
      break;
    }
  }
  ASSERT_GE(t_scale, 0.0);
  const auto& vms = result.tiers[1].provisioned_vms.mean_series();
  const auto at = [&](double t) {
    const auto idx = static_cast<size_t>(t);
    return idx < vms.size() ? vms[idx].second : -1.0;
  };
  EXPECT_NEAR(at(t_scale - 2.0), 1.0, 1e-9);
  EXPECT_NEAR(at(t_scale + 2.0), 2.0, 1e-9);
}

TEST(ScalingTest, DcmReallocatesPoolsOnScaleOut) {
  control::DcmConfig dcm;
  dcm.app_tier_model = tomcat_reference_model();
  dcm.db_tier_model = mysql_reference_model();
  ExperimentConfig config = base_config();
  config.workload = WorkloadSpec::rubbos(500);
  config.controller = ControllerSpec::dcm_controller(dcm);
  const auto result = run_experiment(config);

  // DCM immediately shrinks the Tomcat pool to ~N_b(=20) and must adjust the
  // connection pools when tiers change size.
  EXPECT_GE(result.action_count("set_stp", "tomcat"), 1);
  EXPECT_GE(result.action_count("set_conns", "tomcat"), 1);
  EXPECT_GE(result.action_count("scale_out"), 1);
}

TEST(ScalingTest, DcmKeepsTotalDbConcurrencyNearModelOptimum) {
  control::DcmConfig dcm;
  dcm.app_tier_model = tomcat_reference_model();
  dcm.db_tier_model = mysql_reference_model();
  const int nb_db = dcm.db_tier_model.optimal_concurrency_int();

  ExperimentConfig config = base_config();
  config.workload = WorkloadSpec::rubbos(500);
  config.controller = ControllerSpec::dcm_controller(dcm);
  const auto result = run_experiment(config);

  // Every connection-pool action must keep K_app · conns within one
  // rounding unit of K_db · N_b. We can't see K at action time directly,
  // but the per-server value must always be a ⌈K_db·N_b/K_app⌉ for some
  // valid pair (1..8): verify each setting divides cleanly.
  for (const auto& action : result.actions) {
    if (action.action != "set_conns") continue;
    const int conns = std::stoi(action.detail.substr(action.detail.find('=') + 1));
    bool consistent = false;
    for (int k_app = 1; k_app <= 8 && !consistent; ++k_app) {
      for (int k_db = 1; k_db <= 8 && !consistent; ++k_db) {
        const int expected =
            static_cast<int>(std::ceil(static_cast<double>(k_db * nb_db) / k_app));
        if (conns == expected) consistent = true;
      }
    }
    EXPECT_TRUE(consistent) << "unexplained connection allocation " << conns;
  }
}

}  // namespace
}  // namespace dcm::core
