#include <gtest/gtest.h>

#include "ntier/tier.h"
#include "ntier/vm.h"
#include "sim/engine.h"

namespace dcm::ntier {
namespace {

TierConfig tier_config(int initial = 1, int max_vms = 4) {
  TierConfig config;
  config.name = "app";
  config.server.name = "app";
  config.server.cpu.params = {0.010, 0.0, 0.0};
  config.server.max_threads = 8;
  config.server.downstream_connections = 0;
  config.initial_vms = initial;
  config.min_vms = 1;
  config.max_vms = max_vms;
  config.vm_boot_time = sim::from_seconds(15.0);
  return config;
}

RequestPtr request() {
  auto req = std::make_shared<RequestContext>();
  req->demand_scale = {1.0};
  req->downstream_calls = {0};
  return req;
}

TEST(VmTest, BootDelayGatesActivation) {
  sim::Engine engine;
  bool active = false;
  Vm vm(engine, "vm0", std::make_unique<Server>(engine, tier_config().server, 0, Rng(1)),
        sim::from_seconds(15.0), [&](Vm&) { active = true; });
  EXPECT_EQ(vm.state(), VmState::kBooting);
  engine.run_until(sim::from_seconds(14.9));
  EXPECT_FALSE(active);
  engine.run_until(sim::from_seconds(15.1));
  EXPECT_TRUE(active);
  EXPECT_EQ(vm.state(), VmState::kActive);
}

TEST(VmTest, ZeroBootActivatesSynchronously) {
  sim::Engine engine;
  bool active = false;
  Vm vm(engine, "vm0", std::make_unique<Server>(engine, tier_config().server, 0, Rng(1)), 0,
        [&](Vm&) { active = true; });
  EXPECT_TRUE(active);
  EXPECT_EQ(vm.state(), VmState::kActive);
}

TEST(VmTest, DrainWaitsForInFlight) {
  sim::Engine engine;
  Vm vm(engine, "vm0", std::make_unique<Server>(engine, tier_config().server, 0, Rng(1)), 0,
        nullptr);
  vm.server().process(request(), [](bool) {});
  bool stopped = false;
  vm.begin_drain([&](Vm&, bool) { stopped = true; });
  EXPECT_EQ(vm.state(), VmState::kDraining);
  EXPECT_FALSE(stopped);
  engine.run_until(sim::from_seconds(1.0));
  EXPECT_TRUE(stopped);
  EXPECT_EQ(vm.state(), VmState::kStopped);
}

TEST(VmTest, DrainIdleStopsImmediately) {
  sim::Engine engine;
  Vm vm(engine, "vm0", std::make_unique<Server>(engine, tier_config().server, 0, Rng(1)), 0,
        nullptr);
  bool stopped = false;
  vm.begin_drain([&](Vm&, bool) { stopped = true; });
  EXPECT_TRUE(stopped);
}

TEST(TierTest, InitialVmsAreActiveImmediately) {
  sim::Engine engine;
  Rng rng(1);
  Tier tier(engine, tier_config(2), 0, rng);
  EXPECT_EQ(tier.active_vm_count(), 2);
  EXPECT_EQ(tier.provisioned_vm_count(), 2);
}

TEST(TierTest, DispatchBalancesAcrossServers) {
  sim::Engine engine;
  Rng rng(1);
  Tier tier(engine, tier_config(2), 0, rng);
  for (int i = 0; i < 10; ++i) tier.dispatch(request(), [](bool) {});
  EXPECT_EQ(tier.vms()[0]->server().in_flight(), 5);
  EXPECT_EQ(tier.vms()[1]->server().in_flight(), 5);
  engine.run_until(sim::from_seconds(1.0));
  EXPECT_EQ(tier.completed(), 10u);
}

TEST(TierTest, ScaleOutJoinsAfterBoot) {
  sim::Engine engine;
  Rng rng(1);
  Tier tier(engine, tier_config(1), 0, rng);
  EXPECT_TRUE(tier.scale_out());
  EXPECT_EQ(tier.booting_vm_count(), 1);
  EXPECT_EQ(tier.active_vm_count(), 1);
  engine.run_until(sim::from_seconds(16.0));
  EXPECT_EQ(tier.active_vm_count(), 2);
  EXPECT_EQ(tier.booting_vm_count(), 0);
}

TEST(TierTest, ScaleOutRespectsMax) {
  sim::Engine engine;
  Rng rng(1);
  Tier tier(engine, tier_config(1, /*max=*/2), 0, rng);
  EXPECT_TRUE(tier.scale_out());
  EXPECT_FALSE(tier.scale_out());  // 1 active + 1 booting = max 2
}

TEST(TierTest, ScaleInRespectsMin) {
  sim::Engine engine;
  Rng rng(1);
  Tier tier(engine, tier_config(1), 0, rng);
  EXPECT_FALSE(tier.scale_in());
}

TEST(TierTest, ScaleInDrainsNewestVm) {
  sim::Engine engine;
  Rng rng(1);
  Tier tier(engine, tier_config(1), 0, rng);
  tier.scale_out();
  engine.run_until(sim::from_seconds(20.0));
  ASSERT_EQ(tier.active_vm_count(), 2);
  EXPECT_TRUE(tier.scale_in());
  engine.run_until(sim::from_seconds(21.0));
  EXPECT_EQ(tier.active_vm_count(), 1);
  // The original VM survives; the newest one stopped.
  EXPECT_EQ(tier.vms()[0]->state(), VmState::kActive);
  EXPECT_EQ(tier.vms()[1]->state(), VmState::kStopped);
}

TEST(TierTest, NewVmInheritsCurrentSoftAllocation) {
  sim::Engine engine;
  Rng rng(1);
  TierConfig config = tier_config(1);
  config.server.downstream_connections = 80;
  Tier tier(engine, config, 0, rng);
  tier.set_thread_pool_size(20);
  tier.set_downstream_connections(18);
  tier.scale_out();
  engine.run_until(sim::from_seconds(16.0));
  for (const auto& vm : tier.vms()) {
    if (vm->state() != VmState::kActive) continue;
    EXPECT_EQ(vm->server().thread_pool_size(), 20);
    EXPECT_EQ(vm->server().downstream_connection_limit(), 18);
  }
}

TEST(TierTest, ActivationCallbacksFireForLateVms) {
  sim::Engine engine;
  Rng rng(1);
  Tier tier(engine, tier_config(1), 0, rng);
  int activations = 0;
  tier.add_vm_activated_callback([&](Vm&) { ++activations; });
  tier.add_vm_activated_callback([&](Vm&) { ++activations; });  // second observer
  tier.scale_out();
  engine.run_until(sim::from_seconds(16.0));
  EXPECT_EQ(activations, 2);
}

TEST(TierTest, DrainingVmFinishesItsWork) {
  sim::Engine engine;
  Rng rng(1);
  Tier tier(engine, tier_config(1), 0, rng);
  tier.scale_out();
  engine.run_until(sim::from_seconds(20.0));
  // Load both servers, then scale in; all requests must still complete.
  int completed = 0;
  for (int i = 0; i < 16; ++i) tier.dispatch(request(), [&](bool ok) { completed += ok ? 1 : 0; });
  tier.scale_in();
  engine.run_until(sim::from_seconds(30.0));
  EXPECT_EQ(completed, 16);
  EXPECT_EQ(tier.active_vm_count(), 1);
}

TEST(TierTest, DispatchWithNoActiveServersFails) {
  // Construct a tier whose only VM is draining.
  sim::Engine engine;
  Rng rng(1);
  TierConfig config = tier_config(2);
  config.min_vms = 1;
  Tier tier(engine, config, 0, rng);
  // Drain both manually through scale_in (min 1 prevents the second).
  EXPECT_TRUE(tier.scale_in());
  EXPECT_FALSE(tier.scale_in());
  // Still one active server → dispatch succeeds.
  bool ok = false;
  tier.dispatch(request(), [&](bool r) { ok = r; });
  engine.run_until(sim::from_seconds(1.0));
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace dcm::ntier
