// Resilience mechanisms at the ntier layer: passive balancer health checks,
// the tier health sweep (eject + replacement launch = MTTR), and the
// inter-tier sub-request deadline/retry discipline.
#include <gtest/gtest.h>

#include "core/topologies.h"
#include "ntier/tier.h"
#include "sim/engine.h"

namespace dcm::ntier {
namespace {

ServerConfig slow_leaf(int threads = 4, double service_s = 0.5) {
  ServerConfig config;
  config.name = "leaf";
  config.cpu.params = {service_s, 0.0, 0.0};
  config.max_threads = threads;
  config.downstream_connections = 0;
  config.pre_fraction = 1.0;
  return config;
}

TEST(LoadBalancerHealthTest, ConsecutiveFailuresMarkMemberDown) {
  sim::Engine engine;
  Server a(engine, slow_leaf(), 0, Rng(1));
  Server b(engine, slow_leaf(), 0, Rng(2));
  LoadBalancer lb(LbPolicy::kRoundRobin);
  lb.add(&a);
  lb.add(&b);
  lb.set_health_policy(3);

  lb.report_result(&a, false);
  lb.report_result(&a, false);
  EXPECT_FALSE(lb.is_down(&a));
  lb.report_result(&a, false);
  EXPECT_TRUE(lb.is_down(&a));
  EXPECT_EQ(lb.consecutive_failures(&a), 3);

  // pick() now only returns the healthy member.
  for (int i = 0; i < 4; ++i) EXPECT_EQ(lb.pick(), &b);

  // One success resets the streak and brings the member back.
  lb.report_result(&a, true);
  EXPECT_FALSE(lb.is_down(&a));
  EXPECT_EQ(lb.consecutive_failures(&a), 0);
}

TEST(LoadBalancerHealthTest, AllMembersDownYieldsNull) {
  sim::Engine engine;
  Server a(engine, slow_leaf(), 0, Rng(3));
  LoadBalancer lb(LbPolicy::kRoundRobin);
  lb.add(&a);
  lb.set_health_policy(1);
  lb.report_result(&a, false);
  EXPECT_EQ(lb.pick(), nullptr);
}

TEST(LoadBalancerHealthTest, DisabledPolicyKeepsLegacyPick) {
  sim::Engine engine;
  Server a(engine, slow_leaf(), 0, Rng(4));
  Server b(engine, slow_leaf(), 0, Rng(5));
  LoadBalancer lb(LbPolicy::kRoundRobin);
  lb.add(&a);
  lb.add(&b);
  // No health policy: failures are not tracked and rotation is untouched.
  lb.report_result(&a, false);
  EXPECT_EQ(lb.consecutive_failures(&a), 0);
  EXPECT_EQ(lb.pick(), &a);
  EXPECT_EQ(lb.pick(), &b);
}

TEST(TierHealthSweepTest, SilentCrashIsEjectedAndReplacedWithinMttrBound) {
  sim::Engine engine;
  Rng rng(6);
  TierConfig config;
  config.name = "app";
  config.server = slow_leaf();
  config.initial_vms = 2;
  config.max_vms = 4;
  Tier tier(engine, config, 0, rng);
  HealthCheckConfig health;
  health.period_seconds = 5.0;
  tier.enable_health_checks(health);
  EXPECT_TRUE(tier.health_checks_enabled());

  // Silent crash at t=7: the dead server stays in the balancer until the
  // next sweep (t=10) ejects it and launches a replacement.
  engine.schedule_at(sim::from_seconds(7.0), [&] { tier.inject_crash("app-vm0"); });
  engine.run_until(sim::from_seconds(9.9));
  EXPECT_TRUE(tier.balancer().contains(&tier.vms()[0]->server()));
  EXPECT_EQ(tier.active_vm_count(), 1);

  engine.run_until(sim::from_seconds(10.1));
  EXPECT_FALSE(tier.balancer().contains(&tier.vms()[0]->server()));
  EXPECT_EQ(tier.booting_vm_count(), 1);

  // MTTR = detection (≤ one period) + 15 s boot: capacity is restored by
  // t = 10 + 15 = 25.
  engine.run_until(sim::from_seconds(25.1));
  EXPECT_EQ(tier.active_vm_count(), 2);

  ASSERT_EQ(tier.events().size(), 2u);
  EXPECT_EQ(tier.events()[0].kind, "lb_eject");
  EXPECT_EQ(tier.events()[0].detail, "app-vm0");
  EXPECT_EQ(tier.events()[1].kind, "replace_launch");
}

TEST(TierHealthSweepTest, ReplacementRespectsMaxVms) {
  sim::Engine engine;
  Rng rng(7);
  TierConfig config;
  config.name = "app";
  config.server = slow_leaf();
  config.initial_vms = 2;
  config.max_vms = 3;
  Tier tier(engine, config, 0, rng);
  tier.enable_health_checks({});

  // The controller already scaled out before the sweep runs, so the tier is
  // fully provisioned (1 active + 1 booting + the corpse ejected below):
  // the sweep must not over-provision past max_vms with a replacement.
  tier.inject_crash("app-vm0");
  ASSERT_TRUE(tier.scale_out());
  ASSERT_TRUE(tier.scale_out());
  engine.run_until(sim::from_seconds(6.0));
  EXPECT_EQ(tier.booting_vm_count(), 2);
  ASSERT_EQ(tier.events().size(), 1u);
  EXPECT_EQ(tier.events()[0].kind, "lb_eject");
}

TEST(SubRequestRetryTest, RetryRecoversVisitAfterDownstreamFastFail) {
  sim::Engine engine;
  Rng rng(8);
  TierConfig db;
  db.name = "db";
  db.server = slow_leaf(8, 0.05);
  db.initial_vms = 2;
  db.max_vms = 4;
  Tier db_tier(engine, db, 1, rng);
  // db-vm0 is silently dead: round-robin sends every other sub-request to a
  // fast-failing corpse.
  ASSERT_TRUE(db_tier.inject_crash("db-vm0"));

  ServerConfig up;
  up.name = "app";
  up.cpu.params = {0.01, 0.0, 0.0};
  up.max_threads = 8;
  up.downstream_connections = 8;
  Server upstream(engine, up, 0, Rng(9));
  upstream.set_downstream(&db_tier);
  SubRequestRetryPolicy retry;
  retry.max_retries = 1;
  retry.backoff_base_seconds = 0.01;
  upstream.set_subrequest_retry(retry);

  auto req = std::make_shared<RequestContext>();
  req->demand_scale = {1.0, 1.0};
  req->downstream_calls = {1, 0};
  int ok = 0, failed = 0;
  for (int i = 0; i < 6; ++i) {
    engine.schedule_at(sim::from_seconds(0.2 * i),
                       [&, req] { upstream.process(req, [&](bool r) { (r ? ok : failed)++; }); });
  }
  engine.run_until(sim::from_seconds(5.0));

  // Every visit completes: sub-requests that hit the corpse fail fast and
  // the single retry lands on the survivor.
  EXPECT_EQ(ok, 6);
  EXPECT_EQ(failed, 0);
  EXPECT_GT(upstream.subrequest_retries(), 0u);
}

TEST(SubRequestRetryTest, DeadlineExpirationsAreCountedAndBounded) {
  sim::Engine engine;
  Rng rng(10);
  TierConfig db;
  db.name = "db";
  db.server = slow_leaf(8, 0.5);  // far beyond the 10 ms deadline
  Tier db_tier(engine, db, 1, rng);

  ServerConfig up;
  up.name = "app";
  up.cpu.params = {0.01, 0.0, 0.0};
  up.max_threads = 8;
  up.downstream_connections = 8;
  Server upstream(engine, up, 0, Rng(11));
  upstream.set_downstream(&db_tier);
  SubRequestRetryPolicy retry;
  retry.timeout_seconds = 0.01;
  retry.max_retries = 1;
  retry.backoff_base_seconds = 0.01;
  upstream.set_subrequest_retry(retry);

  auto req = std::make_shared<RequestContext>();
  req->demand_scale = {1.0, 1.0};
  req->downstream_calls = {1, 0};
  bool done_ok = true;
  int done_count = 0;
  upstream.process(req, [&](bool r) {
    done_ok = r;
    ++done_count;
  });
  engine.run_until(sim::from_seconds(5.0));

  // Both attempts timed out; the visit failed exactly once.
  EXPECT_EQ(done_count, 1);
  EXPECT_FALSE(done_ok);
  EXPECT_EQ(upstream.subrequest_timeouts(), 2u);
  EXPECT_EQ(upstream.subrequest_retries(), 1u);
  // The late DB completions were dropped harmlessly.
  EXPECT_EQ(upstream.in_flight(), 0);
  EXPECT_EQ(upstream.downstream_connections_in_use(), 0);
  EXPECT_EQ(db_tier.completed(), 2u);
}

}  // namespace
}  // namespace dcm::ntier
