#include "ntier/metric_sample.h"

#include <gtest/gtest.h>

namespace dcm::ntier {
namespace {

MetricSample sample_fixture() {
  MetricSample s;
  s.time = 12'000'000'000;
  s.server_id = "tomcat-vm2";
  s.tier = "tomcat";
  s.depth = 1;
  s.vm_state = "ACTIVE";
  s.throughput = 87.25;
  s.avg_response_time = 0.042;
  s.concurrency = 19.5;
  s.cpu_util = 0.931;
  s.thread_pool_size = 20;
  s.conn_pool_size = 18;
  s.queue_length = 5;
  return s;
}

TEST(MetricSampleTest, RoundTripPreservesFields) {
  const MetricSample original = sample_fixture();
  const auto parsed = MetricSample::parse(original.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->time, original.time);
  EXPECT_EQ(parsed->server_id, original.server_id);
  EXPECT_EQ(parsed->tier, original.tier);
  EXPECT_EQ(parsed->depth, original.depth);
  EXPECT_EQ(parsed->vm_state, original.vm_state);
  EXPECT_NEAR(parsed->throughput, original.throughput, 1e-5);
  EXPECT_NEAR(parsed->avg_response_time, original.avg_response_time, 1e-5);
  EXPECT_NEAR(parsed->concurrency, original.concurrency, 1e-3);
  EXPECT_NEAR(parsed->cpu_util, original.cpu_util, 1e-3);
  EXPECT_EQ(parsed->thread_pool_size, original.thread_pool_size);
  EXPECT_EQ(parsed->conn_pool_size, original.conn_pool_size);
  EXPECT_EQ(parsed->queue_length, original.queue_length);
}

TEST(MetricSampleTest, DefaultSampleRoundTrips) {
  MetricSample s;
  s.server_id = "x";
  s.tier = "y";
  s.vm_state = "BOOTING";
  const auto parsed = MetricSample::parse(s.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->vm_state, "BOOTING");
  EXPECT_DOUBLE_EQ(parsed->throughput, 0.0);
}

TEST(MetricSampleTest, RejectsMissingField) {
  std::string payload = sample_fixture().serialize();
  // Drop the last field entirely.
  payload = payload.substr(0, payload.rfind(";q="));
  EXPECT_FALSE(MetricSample::parse(payload).has_value());
}

TEST(MetricSampleTest, RejectsMalformedNumbers) {
  std::string payload = sample_fixture().serialize();
  const auto pos = payload.find("u=");
  payload.replace(pos, 3, "u=zz");
  EXPECT_FALSE(MetricSample::parse(payload).has_value());
}

TEST(MetricSampleTest, RejectsGarbage) {
  EXPECT_FALSE(MetricSample::parse("").has_value());
  EXPECT_FALSE(MetricSample::parse("not a sample").has_value());
  EXPECT_FALSE(MetricSample::parse("a=b;c=d").has_value());
}

}  // namespace
}  // namespace dcm::ntier
