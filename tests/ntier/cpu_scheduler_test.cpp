// The CPU scheduler is the simulator's physics; these tests pin down the
// processor-sharing semantics and the Eq. 5–7 throughput behaviour.
#include "ntier/cpu_scheduler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/topologies.h"
#include "sim/engine.h"

namespace dcm::ntier {
namespace {

CpuModelConfig ideal_cpu(double s0) {
  CpuModelConfig cpu;
  cpu.params = {s0, 0.0, 0.0};
  return cpu;
}

// α = S0 makes S*(N) = N·S0, i.e. cap(N) = 1 for every N: a classic
// single-processor PS server with no multithreading speedup.
CpuModelConfig serial_cpu(double s0) {
  CpuModelConfig cpu;
  cpu.params = {s0, s0, 0.0};
  return cpu;
}

TEST(CpuModelConfigTest, InflationMatchesEq5) {
  CpuModelConfig cpu;
  cpu.params = {0.010, 0.002, 0.0001};
  // S*(N) = S0 + α(N−1) + βN(N−1)
  EXPECT_DOUBLE_EQ(cpu.inflated_service_time(1.0), 0.010);
  EXPECT_DOUBLE_EQ(cpu.inflated_service_time(5.0), 0.010 + 0.002 * 4 + 0.0001 * 20);
}

TEST(CpuModelConfigTest, ThrashTermKicksInAboveThreshold) {
  CpuModelConfig cpu;
  cpu.params = {0.010, 0.0, 0.0};
  cpu.thrash_threshold = 10.0;
  cpu.thrash_factor = 0.001;
  EXPECT_DOUBLE_EQ(cpu.inflated_service_time(10.0), 0.010);
  EXPECT_DOUBLE_EQ(cpu.inflated_service_time(15.0), 0.010 + 0.001 * 25.0);
}

TEST(CpuModelConfigTest, ThroughputPeaksAtTheoreticalNb) {
  const CpuModelConfig cpu = core::mysql_cpu_model();
  const double nb = std::sqrt((cpu.params.s0 - cpu.params.alpha) / cpu.params.beta);
  EXPECT_NEAR(nb, 36.0, 1.0);  // Table I: N_b = 36 for MySQL
  // The curve rises to the knee and falls beyond it.
  EXPECT_GT(cpu.throughput_at(nb), cpu.throughput_at(5.0));
  EXPECT_GT(cpu.throughput_at(nb), cpu.throughput_at(160.0));
  EXPECT_GT(cpu.throughput_at(80.0), cpu.throughput_at(160.0));
}

TEST(CpuSchedulerTest, SingleJobRunsAtRealTimeSpeed) {
  sim::Engine engine;
  CpuScheduler cpu(engine, ideal_cpu(0.010));
  cpu.set_thread_count(1);
  bool done = false;
  cpu.submit(0.010, [&] { done = true; });
  engine.run_until(sim::from_seconds(0.0099));
  EXPECT_FALSE(done);
  engine.run_until(sim::from_seconds(0.0101));
  EXPECT_TRUE(done);
}

TEST(CpuSchedulerTest, ZeroWorkCompletesImmediately) {
  sim::Engine engine;
  CpuScheduler cpu(engine, ideal_cpu(0.010));
  cpu.set_thread_count(1);
  bool done = false;
  cpu.submit(0.0, [&] { done = true; });
  engine.run_until(1);  // one tick is enough — the event fires at now
  EXPECT_TRUE(done);
}

TEST(CpuSchedulerTest, TwoIdealJobsRunInParallel) {
  // With α=β=0 the paper's model scales perfectly: cap(2)=2, so two 10 ms
  // jobs finish together at ~10 ms (pipelined-CPU semantics of Eq. 6).
  sim::Engine engine;
  CpuScheduler cpu(engine, ideal_cpu(0.010));
  cpu.set_thread_count(2);
  int done = 0;
  cpu.submit(0.010, [&] { ++done; });
  cpu.submit(0.010, [&] { ++done; });
  engine.run_until(sim::from_seconds(0.009));
  EXPECT_EQ(done, 0);
  engine.run_until(sim::from_seconds(0.011));
  EXPECT_EQ(done, 2);
}

TEST(CpuSchedulerTest, TwoSerialJobsShareCapacityFairly) {
  // With α=S0, cap(N)=1; two jobs of 10 ms each finish together at 20 ms.
  sim::Engine engine;
  CpuScheduler cpu(engine, serial_cpu(0.010));
  cpu.set_thread_count(2);
  int done = 0;
  cpu.submit(0.010, [&] { ++done; });
  cpu.submit(0.010, [&] { ++done; });
  engine.run_until(sim::from_seconds(0.019));
  EXPECT_EQ(done, 0);
  engine.run_until(sim::from_seconds(0.021));
  EXPECT_EQ(done, 2);
}

TEST(CpuSchedulerTest, ShorterJobFinishesFirstUnderPs) {
  sim::Engine engine;
  CpuScheduler cpu(engine, serial_cpu(0.010));
  cpu.set_thread_count(2);
  std::vector<int> order;
  cpu.submit(0.020, [&] { order.push_back(1); });
  cpu.submit(0.005, [&] { order.push_back(2); });
  engine.run_until(sim::from_seconds(1.0));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);
  EXPECT_EQ(order[1], 1);
}

TEST(CpuSchedulerTest, LeafThroughputMatchesEq7AtModerateConcurrency) {
  // Keep N jobs alive continuously for T seconds; completed/T ≈ N/S*(N).
  const CpuModelConfig cpu_config = core::mysql_cpu_model();
  for (const int n : {1, 10, 36, 80}) {
    sim::Engine engine;
    CpuScheduler cpu(engine, cpu_config);
    cpu.set_thread_count(n);
    uint64_t completed = 0;
    // Self-replenishing jobs maintain constant concurrency n.
    std::function<void()> spawn = [&] {
      cpu.submit(cpu_config.params.s0, [&] {
        ++completed;
        spawn();
      });
    };
    for (int i = 0; i < n; ++i) spawn();
    const double horizon = 50.0;
    engine.run_until(sim::from_seconds(horizon));
    const double measured = static_cast<double>(completed) / horizon;
    const double predicted = cpu_config.throughput_at(n);
    EXPECT_NEAR(measured, predicted, predicted * 0.02)
        << "concurrency " << n;
  }
}

TEST(CpuSchedulerTest, OverloadCollapseBeyondThrashThreshold) {
  const CpuModelConfig cpu_config = core::mysql_cpu_model();
  // Throughput at 160 concurrent (two default pools) collapses well below
  // the knee value — the Fig. 2(a)/Fig. 5 failure mode.
  const double at_knee = cpu_config.throughput_at(36.0);
  const double at_160 = cpu_config.throughput_at(160.0);
  EXPECT_LT(at_160, 0.6 * at_knee);
  // And the paper's "reasonable between 20 and 80" band holds.
  EXPECT_GT(cpu_config.throughput_at(20.0), 0.75 * at_knee);
  EXPECT_GT(cpu_config.throughput_at(80.0), 0.75 * at_knee);
}

TEST(CpuSchedulerTest, UtilIntegralTracksBusyTime) {
  sim::Engine engine;
  CpuScheduler cpu(engine, ideal_cpu(0.010));
  cpu.set_thread_count(1);
  cpu.submit(0.010, [] {});
  engine.run_until(sim::from_seconds(1.0));
  // Busy 10 ms out of 1 s.
  EXPECT_NEAR(cpu.util_integral(), 0.010, 1e-6);
}

TEST(CpuSchedulerTest, UtilIsFullWhenCpuBound) {
  const CpuModelConfig cpu_config = core::mysql_cpu_model();
  sim::Engine engine;
  CpuScheduler cpu(engine, cpu_config);
  const int n = 40;
  cpu.set_thread_count(n);
  std::function<void()> spawn = [&] {
    cpu.submit(cpu_config.params.s0, [&] { spawn(); });
  };
  for (int i = 0; i < n; ++i) spawn();
  engine.run_until(sim::from_seconds(10.0));
  EXPECT_NEAR(cpu.util_integral() / 10.0, 1.0, 0.01);
}

TEST(CpuSchedulerTest, WorkDoneAccountsCompletedWork) {
  sim::Engine engine;
  CpuScheduler cpu(engine, ideal_cpu(0.010));
  cpu.set_thread_count(1);
  for (int i = 0; i < 5; ++i) cpu.submit(0.010, [] {});
  engine.run_until(sim::from_seconds(1.0));
  EXPECT_NEAR(cpu.work_done(), 0.050, 1e-6);
  EXPECT_EQ(cpu.jobs_completed(), 5u);
}

TEST(CpuSchedulerTest, ThreadCountChangeReshapesServiceRate) {
  // A lone job with a large thread count suffers inflation: effective
  // per-job rate is clamped at 1 only when capacity allows; with heavy
  // crosstalk, cap(100) < 1 so the job runs slower than real time.
  CpuModelConfig heavy;
  heavy.params = {0.010, 0.005, 1e-4};
  sim::Engine engine;
  CpuScheduler cpu(engine, heavy);
  cpu.set_thread_count(100);  // e.g. 99 blocked threads + this one
  bool done = false;
  cpu.submit(0.010, [&] { done = true; });
  engine.run_until(sim::from_seconds(0.012));
  EXPECT_FALSE(done) << "inflated service should be slower than 1x";
  engine.run_to_completion();
  EXPECT_TRUE(done);
}

TEST(CpuSchedulerTest, MillionEventRunReanchorsFpDrift) {
  // Regression for the advance() FP-drift fix: work_done_ and virtual_clock_
  // grow by repeated rate·dt increments, which pick up both FP rounding at
  // large clock magnitudes and the deterministic nanosecond-ceil slack per
  // completion (~0.5 ns/job of phantom work while the completion event
  // waits for its whole-ns fire tick). A million sequential 1/3-second jobs
  // (1/3 is not representable in binary) cross kReanchorVirtualClock
  // thousands of times; each idle re-anchor snaps work_done() back to the
  // exact completed-work sum. Without it the ceil bias alone accumulates
  // ~5e-4 s of drift — an order of magnitude past this tolerance.
  sim::Engine engine;
  CpuScheduler cpu(engine, ideal_cpu(0.010));
  cpu.set_thread_count(1);
  constexpr int kJobs = 1'000'000;
  constexpr double kWork = 1.0 / 3.0;
  int completed = 0;
  std::function<void()> next = [&] {
    ++completed;
    if (completed < kJobs) cpu.submit(kWork, [&] { next(); });
  };
  cpu.submit(kWork, [&] { next(); });
  engine.run_to_completion();
  EXPECT_EQ(completed, kJobs);
  EXPECT_EQ(cpu.jobs_completed(), static_cast<uint64_t>(kJobs));
  EXPECT_NEAR(cpu.work_done(), kJobs * kWork, 1e-4);
}

TEST(CpuSchedulerTest, ParameterizedThroughputCurveIsUnimodal) {
  const CpuModelConfig cpu_config = core::tomcat_cpu_model();
  // Discrete scan: strictly rising to the knee region then falling.
  const int knee = 20;  // Table I: N_b ≈ 20 for Tomcat
  double best = 0.0;
  int best_n = 0;
  for (int n = 1; n <= 200; ++n) {
    const double x = cpu_config.throughput_at(n);
    if (x > best) {
      best = x;
      best_n = n;
    }
  }
  EXPECT_NEAR(best_n, knee, 2);
}

}  // namespace
}  // namespace dcm::ntier
