#include "ntier/load_balancer.h"

#include <gtest/gtest.h>

#include <map>

#include "ntier/server.h"
#include "sim/engine.h"

namespace dcm::ntier {
namespace {

ServerConfig tiny(const std::string& name) {
  ServerConfig config;
  config.name = name;
  config.cpu.params = {0.01, 0.0, 0.0};
  config.max_threads = 100;
  config.downstream_connections = 0;
  return config;
}

class LoadBalancerTest : public ::testing::Test {
 protected:
  LoadBalancerTest() {
    for (int i = 0; i < 3; ++i) {
      servers_.push_back(std::make_unique<Server>(engine_, tiny("s" + std::to_string(i)), 0,
                                                  Rng(static_cast<uint64_t>(i))));
    }
  }
  sim::Engine engine_;
  std::vector<std::unique_ptr<Server>> servers_;
};

TEST_F(LoadBalancerTest, EmptyReturnsNull) {
  LoadBalancer lb(LbPolicy::kRoundRobin);
  EXPECT_EQ(lb.pick(), nullptr);
}

TEST_F(LoadBalancerTest, RoundRobinCyclesEvenly) {
  LoadBalancer lb(LbPolicy::kRoundRobin);
  for (auto& s : servers_) lb.add(s.get());
  std::map<Server*, int> hits;
  for (int i = 0; i < 30; ++i) ++hits[lb.pick()];
  for (auto& s : servers_) EXPECT_EQ(hits[s.get()], 10);
}

TEST_F(LoadBalancerTest, RemoveKeepsRotationValid) {
  LoadBalancer lb(LbPolicy::kRoundRobin);
  for (auto& s : servers_) lb.add(s.get());
  lb.pick();
  lb.remove(servers_[1].get());
  std::map<Server*, int> hits;
  for (int i = 0; i < 20; ++i) ++hits[lb.pick()];
  EXPECT_EQ(hits[servers_[1].get()], 0);
  EXPECT_EQ(hits[servers_[0].get()] + hits[servers_[2].get()], 20);
  EXPECT_EQ(hits[servers_[0].get()], 10);
}

TEST_F(LoadBalancerTest, RemoveLastThenPickIsNull) {
  LoadBalancer lb(LbPolicy::kRoundRobin);
  lb.add(servers_[0].get());
  lb.remove(servers_[0].get());
  EXPECT_EQ(lb.pick(), nullptr);
}

TEST_F(LoadBalancerTest, LeastConnectionsPrefersIdleServer) {
  LoadBalancer lb(LbPolicy::kLeastConnections);
  for (auto& s : servers_) lb.add(s.get());
  // Load server 0 and 1 with in-flight work.
  auto req = std::make_shared<RequestContext>();
  req->demand_scale = {1.0};
  req->downstream_calls = {0};
  servers_[0]->process(req, [](bool) {});
  servers_[1]->process(req, [](bool) {});
  EXPECT_EQ(lb.pick(), servers_[2].get());
}

TEST_F(LoadBalancerTest, MemberCountTracksMembership) {
  LoadBalancer lb(LbPolicy::kRoundRobin);
  EXPECT_EQ(lb.member_count(), 0u);
  lb.add(servers_[0].get());
  lb.add(servers_[1].get());
  EXPECT_EQ(lb.member_count(), 2u);
  lb.remove(servers_[0].get());
  EXPECT_EQ(lb.member_count(), 1u);
}

}  // namespace
}  // namespace dcm::ntier
