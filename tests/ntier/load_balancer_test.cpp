#include "ntier/load_balancer.h"

#include <gtest/gtest.h>

#include <map>

#include "ntier/server.h"
#include "sim/engine.h"

namespace dcm::ntier {
namespace {

ServerConfig tiny(const std::string& name) {
  ServerConfig config;
  config.name = name;
  config.cpu.params = {0.01, 0.0, 0.0};
  config.max_threads = 100;
  config.downstream_connections = 0;
  return config;
}

class LoadBalancerTest : public ::testing::Test {
 protected:
  LoadBalancerTest() {
    for (int i = 0; i < 3; ++i) {
      servers_.push_back(std::make_unique<Server>(engine_, tiny("s" + std::to_string(i)), 0,
                                                  Rng(static_cast<uint64_t>(i))));
    }
  }
  sim::Engine engine_;
  std::vector<std::unique_ptr<Server>> servers_;
};

TEST_F(LoadBalancerTest, EmptyReturnsNull) {
  LoadBalancer lb(LbPolicy::kRoundRobin);
  EXPECT_EQ(lb.pick(), nullptr);
}

TEST_F(LoadBalancerTest, RoundRobinCyclesEvenly) {
  LoadBalancer lb(LbPolicy::kRoundRobin);
  for (auto& s : servers_) lb.add(s.get());
  std::map<Server*, int> hits;
  for (int i = 0; i < 30; ++i) ++hits[lb.pick()];
  for (auto& s : servers_) EXPECT_EQ(hits[s.get()], 10);
}

TEST_F(LoadBalancerTest, RemoveKeepsRotationValid) {
  LoadBalancer lb(LbPolicy::kRoundRobin);
  for (auto& s : servers_) lb.add(s.get());
  lb.pick();
  lb.remove(servers_[1].get());
  std::map<Server*, int> hits;
  for (int i = 0; i < 20; ++i) ++hits[lb.pick()];
  EXPECT_EQ(hits[servers_[1].get()], 0);
  EXPECT_EQ(hits[servers_[0].get()] + hits[servers_[2].get()], 20);
  EXPECT_EQ(hits[servers_[0].get()], 10);
}

TEST_F(LoadBalancerTest, RemoveLastThenPickIsNull) {
  LoadBalancer lb(LbPolicy::kRoundRobin);
  lb.add(servers_[0].get());
  lb.remove(servers_[0].get());
  EXPECT_EQ(lb.pick(), nullptr);
}

// Picks `n` backends and returns the hit count per server.
std::map<Server*, int> rotate(LoadBalancer& lb, int n) {
  std::map<Server*, int> hits;
  for (int i = 0; i < n; ++i) ++hits[lb.pick()];
  return hits;
}

TEST_F(LoadBalancerTest, AddMidRotationJoinsWithoutSkewingOthers) {
  LoadBalancer lb(LbPolicy::kRoundRobin);
  lb.add(servers_[0].get());
  lb.add(servers_[1].get());
  lb.pick();  // cursor now at servers_[1]
  lb.add(servers_[2].get());
  // Over the next two full rotations every member must be picked exactly
  // twice — the newcomer is neither skipped nor double-picked.
  const auto hits = rotate(lb, 6);
  for (auto& s : servers_) EXPECT_EQ(hits.at(s.get()), 2) << "uneven rotation after add";
}

TEST_F(LoadBalancerTest, RemoveAtCursorDoesNotSkipSuccessor) {
  LoadBalancer lb(LbPolicy::kRoundRobin);
  for (auto& s : servers_) lb.add(s.get());
  EXPECT_EQ(lb.pick(), servers_[0].get());
  EXPECT_EQ(lb.pick(), servers_[1].get());
  // Cursor points at servers_[2]; removing exactly that member must hand the
  // next pick to its successor in rotation order (wrap to servers_[0]).
  lb.remove(servers_[2].get());
  EXPECT_EQ(lb.pick(), servers_[0].get());
  EXPECT_EQ(lb.pick(), servers_[1].get());
  EXPECT_EQ(lb.pick(), servers_[0].get());
}

TEST_F(LoadBalancerTest, RemoveBeforeCursorKeepsRotationPosition) {
  LoadBalancer lb(LbPolicy::kRoundRobin);
  for (auto& s : servers_) lb.add(s.get());
  lb.pick();  // s0
  lb.pick();  // s1, cursor at s2
  lb.remove(servers_[0].get());
  // s2 is still next — removing an already-visited member must not cause
  // s1 to be picked twice in the same rotation.
  EXPECT_EQ(lb.pick(), servers_[2].get());
  EXPECT_EQ(lb.pick(), servers_[1].get());
}

TEST_F(LoadBalancerTest, RemoveLastMemberThenReAddRestartsCleanly) {
  LoadBalancer lb(LbPolicy::kRoundRobin);
  for (auto& s : servers_) lb.add(s.get());
  lb.pick();
  lb.pick();
  for (auto& s : servers_) lb.remove(s.get());
  EXPECT_EQ(lb.pick(), nullptr);
  lb.add(servers_[1].get());
  lb.add(servers_[2].get());
  const auto hits = rotate(lb, 10);
  EXPECT_EQ(hits.at(servers_[1].get()), 5);
  EXPECT_EQ(hits.at(servers_[2].get()), 5);
}

TEST_F(LoadBalancerTest, ChurnStormKeepsFullRotationFair) {
  // Alternate membership churn with full rotations; after each churn step a
  // full rotation over the current members must hit every member exactly
  // once (no skips, no double-picks), regardless of cursor position.
  LoadBalancer lb(LbPolicy::kRoundRobin);
  lb.add(servers_[0].get());
  lb.add(servers_[1].get());
  lb.add(servers_[2].get());
  for (int step = 0; step < 12; ++step) {
    lb.pick();  // desynchronize the cursor from rotation starts
    Server* churned = servers_[static_cast<size_t>(step) % servers_.size()].get();
    lb.remove(churned);
    auto hits = rotate(lb, static_cast<int>(lb.member_count()));
    for (Server* m : lb.members()) {
      EXPECT_EQ(hits[m], 1) << "member skipped or double-picked after remove";
    }
    lb.add(churned);
    hits = rotate(lb, static_cast<int>(lb.member_count()));
    for (Server* m : lb.members()) {
      EXPECT_EQ(hits[m], 1) << "member skipped or double-picked after re-add";
    }
  }
}

TEST_F(LoadBalancerTest, LeastConnectionsPrefersIdleServer) {
  LoadBalancer lb(LbPolicy::kLeastConnections);
  for (auto& s : servers_) lb.add(s.get());
  // Load server 0 and 1 with in-flight work.
  auto req = std::make_shared<RequestContext>();
  req->demand_scale = {1.0};
  req->downstream_calls = {0};
  servers_[0]->process(req, [](bool) {});
  servers_[1]->process(req, [](bool) {});
  EXPECT_EQ(lb.pick(), servers_[2].get());
}

TEST_F(LoadBalancerTest, MemberCountTracksMembership) {
  LoadBalancer lb(LbPolicy::kRoundRobin);
  EXPECT_EQ(lb.member_count(), 0u);
  lb.add(servers_[0].get());
  lb.add(servers_[1].get());
  EXPECT_EQ(lb.member_count(), 2u);
  lb.remove(servers_[0].get());
  EXPECT_EQ(lb.member_count(), 1u);
}

}  // namespace
}  // namespace dcm::ntier
