#include "ntier/server.h"

#include <gtest/gtest.h>

#include "ntier/tier.h"
#include "sim/engine.h"

namespace dcm::ntier {
namespace {

ServerConfig leaf_config(double s0 = 0.010, int threads = 4) {
  ServerConfig config;
  config.name = "leaf";
  config.cpu.params = {s0, 0.0, 0.0};
  config.max_threads = threads;
  config.downstream_connections = 0;
  config.pre_fraction = 1.0;
  return config;
}

RequestPtr simple_request(uint64_t id = 1) {
  auto req = std::make_shared<RequestContext>();
  req->id = id;
  req->demand_scale = {1.0};
  req->downstream_calls = {0};
  return req;
}

TEST(ServerTest, CompletesSingleRequest) {
  sim::Engine engine;
  Server server(engine, leaf_config(), 0, Rng(1));
  bool ok = false;
  server.process(simple_request(), [&](bool r) { ok = r; });
  engine.run_until(sim::from_seconds(1.0));
  EXPECT_TRUE(ok);
  EXPECT_EQ(server.completed(), 1u);
  EXPECT_EQ(server.in_flight(), 0);
}

TEST(ServerTest, ResponseTimeIncludesQueueing) {
  sim::Engine engine;
  Server server(engine, leaf_config(0.010, 1), 0, Rng(1));
  for (int i = 0; i < 3; ++i) server.process(simple_request(), [](bool) {});
  engine.run_until(sim::from_seconds(1.0));
  EXPECT_EQ(server.completed(), 3u);
  // Visits of 10 ms each through one worker: RTs 10, 20, 30 ms.
  EXPECT_NEAR(server.response_time_sum(), 0.060, 1e-6);
}

TEST(ServerTest, DemandScaleMultipliesWork) {
  sim::Engine engine;
  Server server(engine, leaf_config(), 0, Rng(1));
  auto req = simple_request();
  req->demand_scale = {3.0};
  bool done = false;
  server.process(req, [&](bool) { done = true; });
  engine.run_until(sim::from_seconds(0.025));
  EXPECT_FALSE(done);  // needs 30 ms
  engine.run_until(sim::from_seconds(0.035));
  EXPECT_TRUE(done);
}

TEST(ServerTest, AcceptQueueOverflowRejects) {
  sim::Engine engine;
  ServerConfig config = leaf_config(0.010, 1);
  config.max_queue = 2;
  Server server(engine, config, 0, Rng(1));
  int rejected = 0, accepted = 0;
  for (int i = 0; i < 5; ++i) {
    server.process(simple_request(), [&](bool ok) { (ok ? accepted : rejected)++; });
  }
  engine.run_until(sim::from_seconds(1.0));
  // 1 in service + 2 queued accepted, 2 rejected immediately.
  EXPECT_EQ(accepted, 3);
  EXPECT_EQ(rejected, 2);
  EXPECT_EQ(server.rejected(), 2u);
}

TEST(ServerTest, ThreadPoolResizeTakesEffect) {
  sim::Engine engine;
  Server server(engine, leaf_config(0.010, 1), 0, Rng(1));
  server.set_thread_pool_size(4);
  EXPECT_EQ(server.thread_pool_size(), 4);
  for (int i = 0; i < 4; ++i) server.process(simple_request(), [](bool) {});
  EXPECT_EQ(server.in_flight(), 4);
  engine.run_until(sim::from_seconds(1.0));
  EXPECT_EQ(server.completed(), 4u);
}

TEST(ServerTest, IdleCallbackFiresWhenDrained) {
  sim::Engine engine;
  Server server(engine, leaf_config(0.010, 2), 0, Rng(1));
  int idle_calls = 0;
  server.set_idle_callback([&] { ++idle_calls; });
  server.process(simple_request(), [](bool) {});
  server.process(simple_request(), [](bool) {});
  engine.run_until(sim::from_seconds(1.0));
  EXPECT_EQ(idle_calls, 1);  // both complete at the same PS instant
}

class TwoTierFixture : public ::testing::Test {
 protected:
  // A minimal upstream server + downstream tier to exercise nested calls.
  TwoTierFixture() {
    TierConfig db;
    db.name = "db";
    db.server = leaf_config(0.010, 100);
    db.initial_vms = 1;
    db.max_vms = 1;
    db_tier_ = std::make_unique<Tier>(engine_, db, /*depth=*/1, rng_);

    ServerConfig up;
    up.name = "app";
    up.cpu.params = {0.010, 0.0, 0.0};
    up.max_threads = 10;
    up.downstream_connections = 2;
    up.pre_fraction = 0.5;
    upstream_ = std::make_unique<Server>(engine_, up, /*depth=*/0, Rng(3));
    upstream_->set_downstream(db_tier_.get());
  }

  RequestPtr nested_request(int calls) {
    auto req = std::make_shared<RequestContext>();
    req->id = 9;
    req->demand_scale = {1.0, 1.0};
    req->downstream_calls = {calls, 0};
    return req;
  }

  sim::Engine engine_;
  Rng rng_{2};
  std::unique_ptr<Tier> db_tier_;
  std::unique_ptr<Server> upstream_;
};

TEST_F(TwoTierFixture, NestedCallsReachDownstream) {
  bool ok = false;
  upstream_->process(nested_request(2), [&](bool r) { ok = r; });
  engine_.run_until(sim::from_seconds(1.0));
  EXPECT_TRUE(ok);
  EXPECT_EQ(upstream_->completed(), 1u);
  EXPECT_EQ(db_tier_->completed(), 2u);  // two queries
}

TEST_F(TwoTierFixture, VisitTimeSumsPhasesAndCalls) {
  bool done = false;
  upstream_->process(nested_request(2), [&](bool) { done = true; });
  // pre 5ms + 2 sequential queries 10ms + post 5ms = 30ms.
  engine_.run_until(sim::from_seconds(0.029));
  EXPECT_FALSE(done);
  engine_.run_until(sim::from_seconds(0.031));
  EXPECT_TRUE(done);
}

TEST_F(TwoTierFixture, ConnectionPoolLimitsDownstreamConcurrency) {
  // 6 requests, each 1 query; conn pool = 2 → at most 2 queries in flight.
  for (int i = 0; i < 6; ++i) upstream_->process(nested_request(1), [](bool) {});
  int max_db_inflight = 0;
  engine_.schedule_periodic(sim::from_millis(1.0), [&] {
    max_db_inflight = std::max(max_db_inflight, db_tier_->total_in_flight());
  });
  engine_.run_until(sim::from_seconds(1.0));
  EXPECT_LE(max_db_inflight, 2);
  EXPECT_EQ(db_tier_->completed(), 6u);
}

TEST_F(TwoTierFixture, ConnectionPoolResizeRaisesConcurrency) {
  upstream_->set_downstream_connections(6);
  for (int i = 0; i < 6; ++i) upstream_->process(nested_request(1), [](bool) {});
  int max_db_inflight = 0;
  engine_.schedule_periodic(sim::from_millis(0.5), [&] {
    max_db_inflight = std::max(max_db_inflight, db_tier_->total_in_flight());
  });
  engine_.run_until(sim::from_seconds(1.0));
  EXPECT_GE(max_db_inflight, 3);
}

TEST_F(TwoTierFixture, DownstreamFailurePropagates) {
  // Shrink the DB accept queue to force rejections.
  TierConfig db;
  db.name = "db2";
  db.server = leaf_config(0.050, 1);
  db.server.max_queue = 0;
  Rng rng(5);
  Tier tight(engine_, db, 1, rng);
  upstream_->set_downstream(&tight);
  upstream_->set_downstream_connections(4);

  int failures = 0, successes = 0;
  for (int i = 0; i < 4; ++i) {
    upstream_->process(nested_request(1), [&](bool ok) { (ok ? successes : failures)++; });
  }
  engine_.run_until(sim::from_seconds(2.0));
  EXPECT_EQ(successes + failures, 4);
  EXPECT_GE(failures, 1);  // the DB rejects queue-overflow queries
}

}  // namespace
}  // namespace dcm::ntier
