// Failure injection: crash semantics at server, VM, and tier level.
#include <gtest/gtest.h>

#include "core/topologies.h"
#include "ntier/tier.h"
#include "sim/engine.h"
#include "workload/closed_loop.h"

namespace dcm::ntier {
namespace {

ServerConfig slow_leaf(int threads = 4) {
  ServerConfig config;
  config.name = "leaf";
  config.cpu.params = {0.5, 0.0, 0.0};  // slow: requests stay in flight
  config.max_threads = threads;
  config.downstream_connections = 0;
  config.pre_fraction = 1.0;
  return config;
}

RequestPtr request() {
  auto req = std::make_shared<RequestContext>();
  req->demand_scale = {1.0};
  req->downstream_calls = {0};
  return req;
}

TEST(ServerCrashTest, InFlightVisitsFailImmediately) {
  sim::Engine engine;
  Server server(engine, slow_leaf(), 0, Rng(1));
  int ok = 0, failed = 0;
  for (int i = 0; i < 6; ++i) {
    server.process(request(), [&](bool r) { (r ? ok : failed)++; });
  }
  engine.run_until(sim::from_seconds(0.1));
  server.crash();
  EXPECT_EQ(failed, 6);  // 4 in flight + 2 queued
  EXPECT_EQ(ok, 0);
  EXPECT_EQ(server.in_flight(), 0);
  EXPECT_EQ(server.rejected(), 6u);
}

TEST(ServerCrashTest, ServerIsUsableAfterCrash) {
  sim::Engine engine;
  Server server(engine, slow_leaf(), 0, Rng(1));
  server.process(request(), [](bool) {});
  server.crash();
  bool ok = false;
  server.process(request(), [&](bool r) { ok = r; });
  engine.run_until(sim::from_seconds(1.0));
  EXPECT_TRUE(ok);
  EXPECT_EQ(server.completed(), 1u);
}

TEST(ServerCrashTest, PendingCpuWorkIsDropped) {
  sim::Engine engine;
  Server server(engine, slow_leaf(), 0, Rng(1));
  server.process(request(), [](bool) {});
  server.crash();
  const uint64_t completed_at_crash = server.cpu().jobs_completed();
  engine.run_until(sim::from_seconds(2.0));
  // No ghost completion fires later.
  EXPECT_EQ(server.cpu().jobs_completed(), completed_at_crash);
  EXPECT_EQ(server.completed(), 0u);
}

TEST(ServerCrashTest, UpstreamSeesDownstreamCrashAsFailure) {
  sim::Engine engine;
  Rng rng(2);
  TierConfig db;
  db.name = "db";
  db.server = slow_leaf(8);
  Tier db_tier(engine, db, 1, rng);

  ServerConfig up;
  up.name = "app";
  up.cpu.params = {0.01, 0.0, 0.0};
  up.max_threads = 8;
  up.downstream_connections = 8;
  Server upstream(engine, up, 0, Rng(3));
  upstream.set_downstream(&db_tier);

  int ok = 0, failed = 0;
  auto req = std::make_shared<RequestContext>();
  req->demand_scale = {1.0, 1.0};
  req->downstream_calls = {1, 0};
  for (int i = 0; i < 4; ++i) upstream.process(req, [&](bool r) { (r ? ok : failed)++; });
  engine.run_until(sim::from_seconds(0.1));  // queries now in flight at db

  db_tier.fail_vm(db_tier.vms()[0]->id());
  engine.run_until(sim::from_seconds(0.2));
  EXPECT_EQ(failed, 4);
  EXPECT_EQ(ok, 0);
  // Upstream released its own resources correctly.
  EXPECT_EQ(upstream.in_flight(), 0);
  EXPECT_EQ(upstream.downstream_connections_in_use(), 0);
}

TEST(ServerCrashTest, UpstreamCrashIgnoresLateDownstreamResponses) {
  sim::Engine engine;
  Rng rng(4);
  TierConfig db;
  db.name = "db";
  db.server = slow_leaf(8);
  Tier db_tier(engine, db, 1, rng);

  ServerConfig up;
  up.name = "app";
  up.cpu.params = {0.01, 0.0, 0.0};
  up.max_threads = 8;
  up.downstream_connections = 8;
  Server upstream(engine, up, 0, Rng(5));
  upstream.set_downstream(&db_tier);

  int failed = 0;
  auto req = std::make_shared<RequestContext>();
  req->demand_scale = {1.0, 1.0};
  req->downstream_calls = {1, 0};
  for (int i = 0; i < 3; ++i) upstream.process(req, [&](bool r) { failed += r ? 0 : 1; });
  engine.run_until(sim::from_seconds(0.1));  // queries in flight at db

  upstream.crash();
  EXPECT_EQ(failed, 3);
  // The DB responses arrive ~0.5 s later and must be dropped harmlessly.
  engine.run_until(sim::from_seconds(2.0));
  EXPECT_EQ(upstream.in_flight(), 0);
  EXPECT_EQ(upstream.downstream_connections_in_use(), 0);
  EXPECT_EQ(db_tier.completed(), 3u);  // db finished its work normally
}

TEST(VmFailTest, FailedVmLeavesBalancer) {
  sim::Engine engine;
  Rng rng(6);
  TierConfig config;
  config.name = "app";
  config.server = slow_leaf(4);
  config.initial_vms = 2;
  config.max_vms = 4;
  Tier tier(engine, config, 0, rng);

  ASSERT_TRUE(tier.fail_vm("app-vm0"));
  EXPECT_EQ(tier.active_vm_count(), 1);
  EXPECT_EQ(tier.failed_vm_count(), 1);
  // All new work routes to the survivor.
  for (int i = 0; i < 4; ++i) tier.dispatch(request(), [](bool) {});
  EXPECT_EQ(tier.vms()[1]->server().in_flight(), 4);
  EXPECT_EQ(tier.vms()[0]->server().in_flight(), 0);
}

TEST(VmFailTest, FailBootingVmNeverActivates) {
  sim::Engine engine;
  Rng rng(7);
  TierConfig config;
  config.name = "app";
  config.server = slow_leaf(4);
  config.initial_vms = 1;
  config.max_vms = 4;
  Tier tier(engine, config, 0, rng);
  tier.scale_out();
  ASSERT_EQ(tier.booting_vm_count(), 1);
  ASSERT_TRUE(tier.fail_vm("app-vm1"));
  engine.run_until(sim::from_seconds(30.0));
  EXPECT_EQ(tier.active_vm_count(), 1);
  EXPECT_EQ(tier.failed_vm_count(), 1);
}

TEST(VmFailTest, FailDuringDrainNotifiesDrainCallbackWithFailed) {
  // Regression: a crash mid-drain used to clear the idle callback without
  // firing the drain's on_stopped, leaking the scale-in bookkeeping forever.
  sim::Engine engine;
  Vm vm(engine, "vm0", std::make_unique<Server>(engine, slow_leaf(), 0, Rng(9)), 0,
        [](Vm&) {});
  vm.server().process(request(), [](bool) {});  // keeps the drain pending
  int notified = 0;
  bool failed_flag = false;
  vm.begin_drain([&](Vm&, bool failed) {
    ++notified;
    failed_flag = failed;
  });
  ASSERT_EQ(vm.state(), VmState::kDraining);

  vm.fail();
  EXPECT_EQ(vm.state(), VmState::kFailed);
  EXPECT_EQ(notified, 1);
  EXPECT_TRUE(failed_flag);
  // The server going idle later must not re-fire the callback.
  engine.run_until(sim::from_seconds(2.0));
  EXPECT_EQ(notified, 1);
}

TEST(VmFailTest, CleanDrainStillReportsNotFailed) {
  sim::Engine engine;
  Vm vm(engine, "vm0", std::make_unique<Server>(engine, slow_leaf(), 0, Rng(10)), 0,
        [](Vm&) {});
  vm.server().process(request(), [](bool) {});
  bool failed_flag = true;
  int notified = 0;
  vm.begin_drain([&](Vm&, bool failed) {
    ++notified;
    failed_flag = failed;
  });
  engine.run_until(sim::from_seconds(2.0));
  EXPECT_EQ(vm.state(), VmState::kStopped);
  EXPECT_EQ(notified, 1);
  EXPECT_FALSE(failed_flag);
}

TEST(ServerCrashTest, NestedDownstreamCrashFailsEachVisitExactlyOnce) {
  // Epoch bookkeeping with nested sub-requests: the DB crashes while app
  // visits are blocked on it. Each visit's done callback must fire exactly
  // once (the crash-time failure), with no second completion when stray
  // events or late responses surface afterwards.
  sim::Engine engine;
  Rng rng(11);
  TierConfig db;
  db.name = "db";
  db.server = slow_leaf(8);
  Tier db_tier(engine, db, 1, rng);

  ServerConfig up;
  up.name = "app";
  up.cpu.params = {0.01, 0.0, 0.0};
  up.max_threads = 8;
  up.downstream_connections = 8;
  Server upstream(engine, up, 0, Rng(12));
  upstream.set_downstream(&db_tier);

  auto req = std::make_shared<RequestContext>();
  req->demand_scale = {1.0, 1.0};
  req->downstream_calls = {1, 0};
  std::vector<int> done_counts(5, 0);
  std::vector<bool> results(5, true);
  for (int i = 0; i < 5; ++i) {
    upstream.process(req, [&done_counts, &results, i](bool ok) {
      ++done_counts[i];
      results[i] = ok;
    });
  }
  engine.run_until(sim::from_seconds(0.1));  // queries blocked at the db

  db_tier.fail_vm(db_tier.vms()[0]->id());
  engine.run_until(sim::from_seconds(2.0));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(done_counts[i], 1) << "visit " << i;
    EXPECT_FALSE(results[i]) << "visit " << i;
  }
  EXPECT_EQ(upstream.in_flight(), 0);
  EXPECT_EQ(upstream.downstream_connections_in_use(), 0);
}

TEST(VmFailTest, CannotFailDeadVm) {
  sim::Engine engine;
  Rng rng(8);
  TierConfig config;
  config.name = "app";
  config.server = slow_leaf(4);
  config.initial_vms = 1;
  config.max_vms = 4;
  Tier tier(engine, config, 0, rng);
  ASSERT_TRUE(tier.fail_one());
  EXPECT_FALSE(tier.fail_vm("app-vm0"));
  EXPECT_FALSE(tier.fail_vm("no-such-vm"));
}

}  // namespace
}  // namespace dcm::ntier
