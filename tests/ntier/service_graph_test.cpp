#include "ntier/service_graph.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/topologies.h"

namespace dcm::ntier {
namespace {

ServiceNode make_node(const std::string& name, NodeRole role) {
  ServiceNode node;
  node.tier.name = name;
  node.role = role;
  return node;
}

// Shorthand for a plain 1-call edge in validation tests.
ServiceEdge call(int from, int to) {
  ServiceEdge edge;
  edge.from = from;
  edge.to = to;
  return edge;
}

TEST(ServiceGraphTest, Chain3LowersToDegenerateGraph) {
  const ServiceGraph graph = core::build_service_graph(
      {core::TopologySpec::Kind::kChain3, {}, {}}, {1, 2, 1}, {1000, 100, 80});
  ASSERT_EQ(graph.node_count(), 3u);
  ASSERT_EQ(graph.edge_count(), 2u);
  EXPECT_TRUE(graph.is_chain());
  EXPECT_EQ(graph.node(0).role, NodeRole::kWeb);
  EXPECT_EQ(graph.node(1).role, NodeRole::kApp);
  EXPECT_EQ(graph.node(2).role, NodeRole::kDb);
  EXPECT_EQ(graph.node(1).tier.initial_vms, 2);
  // Paper V = {1, 1, q} with q = kDbVisitRatio.
  EXPECT_DOUBLE_EQ(graph.visit_ratios()[0], 1.0);
  EXPECT_DOUBLE_EQ(graph.visit_ratios()[1], 1.0);
  EXPECT_DOUBLE_EQ(graph.visit_ratios()[2], core::kDbVisitRatio);
  EXPECT_EQ(graph.managed_edge(), 1);
  EXPECT_TRUE(graph.edge(1).servlet_calls);
  EXPECT_EQ(graph.edge(1).pool_capacity, 80);
}

TEST(ServiceGraphTest, Chain4AddsTheHaproxyHop) {
  const ServiceGraph graph = core::rubbos_4tier_graph({1, 1, 1}, {1000, 100, 80});
  ASSERT_EQ(graph.node_count(), 4u);
  ASSERT_EQ(graph.edge_count(), 3u);
  EXPECT_TRUE(graph.is_chain());
  EXPECT_EQ(graph.node(2).role, NodeRole::kLb);
  EXPECT_EQ(graph.node(3).role, NodeRole::kDb);
  // The lb hop forwards each of the app tier's q queries one-for-one.
  EXPECT_DOUBLE_EQ(graph.visit_ratios()[2], core::kDbVisitRatio);
  EXPECT_DOUBLE_EQ(graph.visit_ratios()[3], core::kDbVisitRatio);
  EXPECT_EQ(graph.managed_edge(), 1);
}

TEST(ServiceGraphTest, DiamondFanOutOrderAndRatios) {
  core::TopologySpec spec;
  spec.kind = core::TopologySpec::Kind::kGraph;
  spec.nodes = {{"apache", "web"}, {"tomcat", "app"}, {"memcache", "cache"}, {"mysql", "db"}};
  spec.edges = {{"apache", "tomcat", 1, false, false},
                {"tomcat", "memcache", 1, false, false},
                {"tomcat", "mysql", 0, true, true}};
  const ServiceGraph graph = core::build_service_graph(spec, {1, 3, 1}, {1000, 100, 80});
  EXPECT_FALSE(graph.is_chain());
  ASSERT_EQ(graph.out_edges(1).size(), 2u);
  // Declaration order = issue order = edge ids.
  EXPECT_EQ(graph.out_edges(1)[0], 1);
  EXPECT_EQ(graph.out_edges(1)[1], 2);
  EXPECT_EQ(graph.first_node_with_role(NodeRole::kCache), 2);
  EXPECT_EQ(graph.first_node_with_role(NodeRole::kDb), 3);
  EXPECT_EQ(graph.first_node_with_role(NodeRole::kLb), -1);
  EXPECT_DOUBLE_EQ(graph.visit_ratios()[2], 1.0);
  EXPECT_DOUBLE_EQ(graph.visit_ratios()[3], core::kDbVisitRatio);
  EXPECT_EQ(graph.managed_edge(), 2);
  // The fan-out node keeps per-edge pools, not the legacy tier-wide conns.
  EXPECT_EQ(graph.node(1).tier.server.downstream_connections, 0);
  EXPECT_EQ(graph.edge(2).pool_capacity, 80);
}

TEST(ServiceGraphTest, LongChainsBeyondTheLegacyTierCapAreAccepted) {
  // 10 nodes / 9 edges — more tiers than the legacy 8-deep chain arrays; the
  // per-request inline storage (request.h) must size past it.
  std::vector<ServiceNode> nodes;
  std::vector<ServiceEdge> edges;
  for (int i = 0; i < 10; ++i) {
    nodes.push_back(make_node("n" + std::to_string(i),
                              i == 0 ? NodeRole::kWeb : NodeRole::kApp));
    if (i > 0) edges.push_back(call(i - 1, i));
  }
  const ServiceGraph graph(nodes, edges);
  EXPECT_TRUE(graph.is_chain());
  EXPECT_DOUBLE_EQ(graph.visit_ratios()[9], 1.0);
}

TEST(ServiceGraphTest, RejectsSelfLoopAndOutOfRangeEdges) {
  const std::vector<ServiceNode> nodes = {make_node("a", NodeRole::kWeb),
                                          make_node("b", NodeRole::kApp)};
  EXPECT_THROW(ServiceGraph(nodes, {call(1, 1)}), std::runtime_error);
  EXPECT_THROW(ServiceGraph(nodes, {call(0, 7)}), std::runtime_error);
}

TEST(ServiceGraphTest, RejectsUnreachableNodeAndRootInEdge) {
  const std::vector<ServiceNode> nodes = {make_node("a", NodeRole::kWeb),
                                          make_node("b", NodeRole::kApp),
                                          make_node("c", NodeRole::kDb)};
  EXPECT_THROW(ServiceGraph(nodes, {call(0, 1)}), std::runtime_error);    // c unreachable
  EXPECT_THROW(ServiceGraph(nodes, {call(0, 1), call(1, 2), call(2, 0)}),  // root in-edge
               std::runtime_error);
}

TEST(ServiceGraphTest, RejectsCyclesByNodeId) {
  const std::vector<ServiceNode> nodes = {make_node("a", NodeRole::kWeb),
                                          make_node("b", NodeRole::kApp),
                                          make_node("c", NodeRole::kDb)};
  try {
    ServiceGraph(nodes, {call(0, 1), call(1, 2), call(2, 1)});
    FAIL() << "expected a cycle rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos) << e.what();
  }
}

TEST(ServiceGraphTest, RejectsExcessFanOut) {
  std::vector<ServiceNode> nodes = {make_node("root", NodeRole::kWeb)};
  std::vector<ServiceEdge> edges;
  for (size_t i = 1; i <= kMaxFanOut + 1; ++i) {
    nodes.push_back(make_node("leaf" + std::to_string(i), NodeRole::kCache));
    edges.push_back(call(0, static_cast<int>(i)));
  }
  EXPECT_THROW(ServiceGraph(nodes, edges), std::runtime_error);
}

TEST(ServiceGraphTest, RejectsManagedEdgeMisuse) {
  const std::vector<ServiceNode> nodes = {make_node("a", NodeRole::kWeb),
                                          make_node("b", NodeRole::kApp),
                                          make_node("c", NodeRole::kDb)};
  ServiceEdge unpooled = call(1, 2);
  unpooled.managed = true;  // managed implies pool_capacity > 0
  EXPECT_THROW(ServiceGraph(nodes, {call(0, 1), unpooled}), std::runtime_error);

  ServiceEdge first = call(0, 1);
  first.managed = true;
  first.pool_capacity = 10;
  ServiceEdge second = call(1, 2);
  second.managed = true;
  second.pool_capacity = 10;
  EXPECT_THROW(ServiceGraph(nodes, {first, second}), std::runtime_error);
}

TEST(ServiceGraphTest, BuildRejectsBadSpecs) {
  core::TopologySpec spec;
  spec.kind = core::TopologySpec::Kind::kGraph;
  spec.nodes = {{"a", "web"}, {"b", "quantum"}};
  spec.edges = {{"a", "b", 1, false, false}};
  EXPECT_THROW(core::build_service_graph(spec, {1, 1, 1}, {1000, 100, 80}),
               std::runtime_error);  // unknown role

  spec.nodes = {{"a", "web"}, {"a", "app"}};
  EXPECT_THROW(core::build_service_graph(spec, {1, 1, 1}, {1000, 100, 80}),
               std::runtime_error);  // duplicate name

  spec.nodes = {{"a", "web"}, {"b", "app"}};
  spec.edges = {{"a", "ghost", 1, false, false}};
  EXPECT_THROW(core::build_service_graph(spec, {1, 1, 1}, {1000, 100, 80}),
               std::runtime_error);  // undeclared endpoint
}

TEST(ServiceGraphTest, RoleNamesRoundTrip) {
  for (const char* name : {"web", "app", "db", "lb", "cache"}) {
    NodeRole role;
    ASSERT_TRUE(parse_node_role(name, &role)) << name;
    EXPECT_STREQ(node_role_name(role), name);
  }
  NodeRole role;
  EXPECT_FALSE(parse_node_role("cdn", &role));
}

}  // namespace
}  // namespace dcm::ntier
