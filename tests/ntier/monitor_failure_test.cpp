// Monitoring behaviour around VM failures: dead VMs go silent, the
// controller's view shrinks to the survivors.
#include <gtest/gtest.h>

#include "bus/consumer.h"
#include "core/topologies.h"
#include "ntier/monitor_agent.h"

namespace dcm::ntier {
namespace {

TEST(MonitorFailureTest, FailedVmStopsPublishing) {
  sim::Engine engine;
  NTierApp app(engine, core::rubbos_app_config({1, 2, 1}, {1000, 100, 80}));
  bus::Broker broker;
  MonitorFleet fleet(engine, app, broker);

  engine.run_until(sim::from_seconds(5.5));
  app.tier(1).fail_vm("tomcat-vm0");
  engine.run_until(sim::from_seconds(12.5));

  bus::Consumer consumer(broker, "test", kMetricsTopic);
  int vm0_before = 0, vm0_after = 0, vm1_after = 0;
  for (const auto& record : consumer.poll(10000)) {
    const auto sample = MetricSample::parse(record.value);
    ASSERT_TRUE(sample.has_value());
    if (sample->server_id == "tomcat-vm0") {
      (sim::to_seconds(sample->time) <= 5.5 ? vm0_before : vm0_after)++;
    }
    if (sample->server_id == "tomcat-vm1" && sim::to_seconds(sample->time) > 5.5) {
      ++vm1_after;
    }
  }
  EXPECT_EQ(vm0_before, 5);
  EXPECT_EQ(vm0_after, 0);   // silence after the crash
  EXPECT_EQ(vm1_after, 7);   // the survivor keeps reporting
}

TEST(MonitorFailureTest, DrainingVmStillReportsUntilStopped) {
  sim::Engine engine;
  NTierApp app(engine, core::rubbos_app_config({1, 2, 1}, {1000, 100, 80}));
  bus::Broker broker;
  MonitorFleet fleet(engine, app, broker);

  engine.run_until(sim::from_seconds(3.5));
  // Idle drain stops immediately → reports cease right away.
  app.tier(1).scale_in();
  engine.run_until(sim::from_seconds(8.5));

  bus::Consumer consumer(broker, "test", kMetricsTopic);
  int stopped_vm_reports_after = 0;
  for (const auto& record : consumer.poll(10000)) {
    const auto sample = MetricSample::parse(record.value);
    ASSERT_TRUE(sample.has_value());
    if (sample->server_id == "tomcat-vm1" && sim::to_seconds(sample->time) > 3.5) {
      ++stopped_vm_reports_after;
    }
  }
  EXPECT_EQ(stopped_vm_reports_after, 0);
}

}  // namespace
}  // namespace dcm::ntier
