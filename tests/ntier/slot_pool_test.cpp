#include "ntier/slot_pool.h"

#include <gtest/gtest.h>

#include <vector>

namespace dcm::ntier {
namespace {

TEST(SlotPoolTest, GrantsImmediatelyWhenFree) {
  sim::Engine engine;
  SlotPool pool(engine, "p", 2);
  bool granted = false;
  pool.acquire([&] { granted = true; });
  EXPECT_TRUE(granted);
  EXPECT_EQ(pool.in_use(), 1);
  EXPECT_EQ(pool.queue_length(), 0);
}

TEST(SlotPoolTest, QueuesWhenFull) {
  sim::Engine engine;
  SlotPool pool(engine, "p", 1);
  pool.acquire([] {});
  bool granted = false;
  pool.acquire([&] { granted = true; });
  EXPECT_FALSE(granted);
  EXPECT_EQ(pool.queue_length(), 1);
  pool.release();
  EXPECT_TRUE(granted);
  EXPECT_EQ(pool.in_use(), 1);
  EXPECT_EQ(pool.queue_length(), 0);
}

TEST(SlotPoolTest, FifoOrderAmongWaiters) {
  sim::Engine engine;
  SlotPool pool(engine, "p", 1);
  pool.acquire([] {});
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    pool.acquire([&order, i] { order.push_back(i); });
  }
  for (int i = 0; i < 3; ++i) pool.release();
  pool.release();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SlotPoolTest, InUseNeverExceedsCapacity) {
  sim::Engine engine;
  SlotPool pool(engine, "p", 3);
  for (int i = 0; i < 10; ++i) pool.acquire([] {});
  EXPECT_EQ(pool.in_use(), 3);
  EXPECT_EQ(pool.queue_length(), 7);
}

TEST(SlotPoolTest, GrowDispatchesWaitersImmediately) {
  sim::Engine engine;
  SlotPool pool(engine, "p", 1);
  pool.acquire([] {});
  int granted = 0;
  for (int i = 0; i < 4; ++i) pool.acquire([&] { ++granted; });
  pool.resize(3);
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(pool.in_use(), 3);
  EXPECT_EQ(pool.queue_length(), 2);
}

TEST(SlotPoolTest, ShrinkIsLazyNeverEvicts) {
  sim::Engine engine;
  SlotPool pool(engine, "p", 4);
  for (int i = 0; i < 4; ++i) pool.acquire([] {});
  pool.resize(2);
  EXPECT_EQ(pool.in_use(), 4);  // existing holders unaffected
  EXPECT_EQ(pool.capacity(), 2);
  bool granted = false;
  pool.acquire([&] { granted = true; });
  pool.release();  // 3 in use, still above new capacity
  EXPECT_FALSE(granted);
  pool.release();  // 2 in use
  EXPECT_FALSE(granted);
  pool.release();  // 1 in use < 2 → waiter admitted
  EXPECT_TRUE(granted);
  EXPECT_EQ(pool.in_use(), 2);
}

TEST(SlotPoolTest, WaitTimeStatsMeasured) {
  sim::Engine engine;
  SlotPool pool(engine, "p", 1);
  pool.acquire([] {});
  pool.acquire([] {});  // waits
  engine.schedule_after(sim::from_seconds(2.0), [&] { pool.release(); });
  engine.run_until(sim::from_seconds(3.0));
  EXPECT_EQ(pool.total_acquired(), 2u);
  EXPECT_NEAR(pool.wait_stats().max(), 2.0, 1e-9);
}

TEST(SlotPoolTest, InUseIntegralTracksOccupancy) {
  sim::Engine engine;
  SlotPool pool(engine, "p", 2);
  pool.acquire([] {});
  engine.schedule_after(sim::from_seconds(1.0), [&] { pool.acquire([] {}); });
  engine.schedule_after(sim::from_seconds(2.0), [&] {
    pool.release();
    pool.release();
  });
  engine.run_until(sim::from_seconds(3.0));
  // 1 slot for [0,1) + 2 slots for [1,2) + 0 after = 3 slot-seconds.
  EXPECT_NEAR(pool.in_use_integral(), 3.0, 1e-9);
}

TEST(SlotPoolTest, ReentrantGrantFromRelease) {
  // A grant callback that immediately acquires again must not corrupt
  // accounting (this happens when a freed worker starts a queued visit that
  // issues a downstream call synchronously).
  sim::Engine engine;
  SlotPool pool(engine, "p", 1);
  pool.acquire([] {});
  int grants = 0;
  pool.acquire([&] {
    ++grants;
    pool.acquire([&] { ++grants; });  // queues again
  });
  pool.release();  // grants waiter #1, which enqueues another
  EXPECT_EQ(grants, 1);
  EXPECT_EQ(pool.in_use(), 1);
  EXPECT_EQ(pool.queue_length(), 1);
  pool.release();
  EXPECT_EQ(grants, 2);
}

}  // namespace
}  // namespace dcm::ntier
