// Monitoring pipeline: agents sample per second and publish to the bus; the
// fleet covers later-launched VMs.
#include "ntier/monitor_agent.h"

#include <gtest/gtest.h>

#include "bus/consumer.h"
#include "core/topologies.h"
#include "workload/closed_loop.h"

namespace dcm::ntier {
namespace {

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest()
      : app_(engine_, core::rubbos_app_config({1, 1, 1}, {1000, 100, 80})),
        fleet_(engine_, app_, broker_),
        catalog_(workload::ServletCatalog::browse_only_mix()) {}

  sim::Engine engine_;
  bus::Broker broker_;
  ntier::NTierApp app_;
  MonitorFleet fleet_;
  workload::ServletCatalog catalog_;
};

TEST_F(MonitorTest, OneAgentPerInitialVm) {
  EXPECT_EQ(fleet_.agent_count(), 3u);  // one per tier's single VM
}

TEST_F(MonitorTest, SamplesArriveEverySecond) {
  engine_.run_until(sim::from_seconds(5.5));
  bus::Consumer consumer(broker_, "test", kMetricsTopic);
  const auto records = consumer.poll(1000);
  // 3 agents × 5 ticks.
  EXPECT_EQ(records.size(), 15u);
}

TEST_F(MonitorTest, SamplesParseAndCarryTierIdentity) {
  engine_.run_until(sim::from_seconds(2.5));
  bus::Consumer consumer(broker_, "test", kMetricsTopic);
  int apache = 0, tomcat = 0, mysql = 0;
  for (const auto& record : consumer.poll(1000)) {
    const auto sample = MetricSample::parse(record.value);
    ASSERT_TRUE(sample.has_value());
    if (sample->tier == "apache") ++apache;
    if (sample->tier == "tomcat") ++tomcat;
    if (sample->tier == "mysql") ++mysql;
    EXPECT_EQ(sample->vm_state, "ACTIVE");
  }
  EXPECT_EQ(apache, 2);
  EXPECT_EQ(tomcat, 2);
  EXPECT_EQ(mysql, 2);
}

TEST_F(MonitorTest, ThroughputAndConcurrencyReflectLoad) {
  auto generator = workload::make_jmeter(engine_, app_, catalog_, 20);
  generator->start();
  engine_.run_until(sim::from_seconds(10.5));
  bus::Consumer consumer(broker_, "test", kMetricsTopic);
  double tomcat_throughput = 0.0;
  double tomcat_concurrency = 0.0;
  int tomcat_samples = 0;
  for (const auto& record : consumer.poll(10000)) {
    const auto sample = MetricSample::parse(record.value);
    ASSERT_TRUE(sample.has_value());
    if (sample->tier != "tomcat" || sim::to_seconds(sample->time) < 3.0) continue;
    tomcat_throughput += sample->throughput;
    tomcat_concurrency += sample->concurrency;
    ++tomcat_samples;
  }
  ASSERT_GT(tomcat_samples, 0);
  EXPECT_GT(tomcat_throughput / tomcat_samples, 10.0);
  // 20 closed-loop users: most hold a Tomcat worker most of the time.
  EXPECT_GT(tomcat_concurrency / tomcat_samples, 10.0);
  EXPECT_LE(tomcat_concurrency / tomcat_samples, 20.5);
}

TEST_F(MonitorTest, FleetAttachesToScaledOutVms) {
  app_.tier(1).scale_out();
  engine_.run_until(sim::from_seconds(20.0));
  EXPECT_EQ(fleet_.agent_count(), 4u);
  bus::Consumer consumer(broker_, "test", kMetricsTopic);
  bool saw_new_vm = false;
  for (const auto& record : consumer.poll(10000)) {
    if (record.key == "tomcat-vm1") saw_new_vm = true;
  }
  EXPECT_TRUE(saw_new_vm);
}

TEST_F(MonitorTest, RetentionBoundsBusGrowth) {
  engine_.run_until(sim::from_seconds(600.0));
  // 3 agents × 600 s = 1800 records produced, but retention is 120 s.
  EXPECT_LT(broker_.total_records(), 3 * 140u);
}

TEST_F(MonitorTest, IdleServersReportZeroUtil) {
  engine_.run_until(sim::from_seconds(3.5));
  bus::Consumer consumer(broker_, "test", kMetricsTopic);
  for (const auto& record : consumer.poll(1000)) {
    const auto sample = MetricSample::parse(record.value);
    ASSERT_TRUE(sample.has_value());
    EXPECT_DOUBLE_EQ(sample->cpu_util, 0.0);
    EXPECT_DOUBLE_EQ(sample->throughput, 0.0);
  }
}

}  // namespace
}  // namespace dcm::ntier
