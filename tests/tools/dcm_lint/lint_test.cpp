// In-process tests for the dcm_lint rule engine, driven by the fixture
// corpus in fixtures/. Each rule has a firing and a non-firing fixture;
// fixtures are linted under virtual paths inside (or outside) each rule's
// scope, since scoping is part of the contract. Hot-path-scoped rules use
// fixtures whose offending code sits inside (or is called from) a hot-path
// seed class — `Server`, `CpuScheduler`, `EventQueue::pop` — and cold
// variants of the same code that must stay silent.
//
// The header-self-sufficiency rule has no token engine: its fixtures are
// compiled standalone with the real compiler (the same thing the
// dcm_header_selfcheck CMake target does to every src/**/*.h).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "dcm_lint/baseline.h"
#include "dcm_lint/emit.h"
#include "dcm_lint/linter.h"

namespace dcm::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(DCM_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<Diagnostic> lint_fixture(const std::string& name,
                                     const std::string& virtual_path) {
  return lint_source(virtual_path, read_fixture(name));
}

/// Lints a mini-tree fixture directory (fixtures/<name>/src/...).
std::vector<Diagnostic> lint_fixture_tree(const std::string& name) {
  return lint_tree(std::string(DCM_LINT_FIXTURE_DIR) + "/" + name, {"src"});
}

/// (rule, line) pairs, for order-insensitive comparison.
std::multiset<std::pair<std::string, int>> findings(const std::vector<Diagnostic>& diags) {
  std::multiset<std::pair<std::string, int>> out;
  for (const auto& d : diags) out.emplace(d.rule, d.line);
  return out;
}

std::set<std::string> rules_fired(const std::vector<Diagnostic>& diags) {
  std::set<std::string> out;
  for (const auto& d : diags) out.insert(d.rule);
  return out;
}

using Expected = std::multiset<std::pair<std::string, int>>;

// --- no-wall-clock ---------------------------------------------------------

TEST(DcmLintTest, WallClockFires) {
  const auto diags = lint_fixture("wall_clock_fire.cc", "src/ntier/clocky.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-wall-clock", 10}, {"no-wall-clock", 14}}));
}

TEST(DcmLintTest, WallClockCleanFileIsClean) {
  EXPECT_TRUE(lint_fixture("wall_clock_clean.cc", "src/core/clocky.cc").empty());
}

TEST(DcmLintTest, WallClockColdSiteIsClean) {
  // Identical clock accesses in a free function no hot-path seed reaches:
  // cold setup/reporting code may read the host clock.
  EXPECT_TRUE(lint_fixture("wall_clock_cold.cc", "src/core/clocky.cc").empty());
}

TEST(DcmLintTest, WallClockScopedToSrc) {
  // Benches and tools may read the host clock; the rule only covers src/.
  EXPECT_TRUE(lint_fixture("wall_clock_fire.cc", "bench/timer.cc").empty());
}

// --- no-ambient-randomness -------------------------------------------------

TEST(DcmLintTest, AmbientRandomnessFires) {
  const auto diags = lint_fixture("randomness_fire.cc", "src/workload/seedy.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-ambient-randomness", 9},
                                       {"no-ambient-randomness", 13},
                                       {"no-ambient-randomness", 15}}));
}

TEST(DcmLintTest, AmbientRandomnessCleanFileIsClean) {
  EXPECT_TRUE(lint_fixture("randomness_clean.cc", "src/workload/seedy.cc").empty());
}

TEST(DcmLintTest, AmbientRandomnessColdSiteIsClean) {
  EXPECT_TRUE(lint_source("src/workload/seedy.cc",
                          "int cold_draw() { return rand() % 6; }\n")
                  .empty());
}

TEST(DcmLintTest, AmbientRandomnessCoversSweepCli) {
  // The sweep CLI feeds seeds into experiments; a stray rand() there would
  // break the bit-identical --jobs 1 vs --jobs N guarantee. dcm_run (and
  // examples/) are covered whole-file: nothing there is dispatch-reachable,
  // but nondeterministic seeding still poisons replay.
  EXPECT_FALSE(lint_fixture("randomness_fire.cc", "tools/dcm_run/main.cpp").empty());
  EXPECT_FALSE(
      lint_source("examples/quickstart.cpp", "int d() { return rand() % 6; }\n").empty());
}

// --- no-unordered-iteration ------------------------------------------------

TEST(DcmLintTest, UnorderedIterationFires) {
  const auto diags = lint_fixture("unordered_iter_fire.cc", "src/control/spread.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-unordered-iteration", 9},
                                       {"no-unordered-iteration", 17}}));
}

TEST(DcmLintTest, UnorderedIterationCleanFileIsClean) {
  EXPECT_TRUE(lint_fixture("unordered_iter_clean.cc", "src/control/spread.cc").empty());
}

TEST(DcmLintTest, UnorderedIterationIsTreeWide) {
  // Promoted from src/{sim,ntier,control,scenario} to all of src/ plus the
  // CLIs and examples: hash-order iteration anywhere in library code can
  // leak into logs, tables, or digests.
  EXPECT_FALSE(lint_fixture("unordered_iter_fire.cc", "src/fit/spread.cc").empty());
  EXPECT_FALSE(lint_fixture("unordered_iter_fire.cc", "examples/quickstart.cpp").empty());
}

TEST(DcmLintTest, UnorderedIterationCoversSweepMerge) {
  // Hash-order iteration in the scenario layer or the sweep CLI would leak
  // into run ordering and break sweep-digest invariance across job counts.
  EXPECT_FALSE(lint_fixture("unordered_iter_fire.cc", "src/scenario/sweep.cc").empty());
  EXPECT_FALSE(lint_fixture("unordered_iter_fire.cc", "tools/dcm_run/main.cpp").empty());
}

// --- no-raw-assert ---------------------------------------------------------

TEST(DcmLintTest, RawAssertFires) {
  const auto diags = lint_fixture("raw_assert_fire.cc", "src/model/invariants.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-raw-assert", 3}, {"no-raw-assert", 6}}));
}

TEST(DcmLintTest, RawAssertCleanFileIsClean) {
  EXPECT_TRUE(lint_fixture("raw_assert_clean.cc", "src/model/invariants.cc").empty());
}

TEST(DcmLintTest, RawAssertAppliesToTests) {
  EXPECT_FALSE(lint_fixture("raw_assert_fire.cc", "tests/model/invariants_test.cpp").empty());
}

// --- no-float-eq -----------------------------------------------------------

TEST(DcmLintTest, FloatEqFires) {
  const auto diags = lint_fixture("float_eq_fire.cc", "src/metrics/compare.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-float-eq", 2},
                                       {"no-float-eq", 4},
                                       {"no-float-eq", 6}}));
}

TEST(DcmLintTest, FloatEqCleanFileIsClean) {
  EXPECT_TRUE(lint_fixture("float_eq_clean.cc", "src/metrics/compare.cc").empty());
}

// --- no-raw-new-in-hot-path ------------------------------------------------

TEST(DcmLintTest, RawNewFires) {
  const auto diags = lint_fixture("raw_new_fire.cc", "src/sim/node_pool.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-raw-new-in-hot-path", 10},
                                       {"no-raw-new-in-hot-path", 12}}));
}

TEST(DcmLintTest, RawNewCleanFileIsClean) {
  EXPECT_TRUE(lint_fixture("raw_new_clean.cc", "src/sim/node_pool.cc").empty());
}

TEST(DcmLintTest, RawNewCoversRequestPath) {
  // The allocation-free invariant follows reachability, not directories: the
  // same seed-class fixture fires anywhere under src/.
  const auto diags = lint_fixture("raw_new_fire.cc", "src/ntier/node_pool.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-raw-new-in-hot-path", 10},
                                       {"no-raw-new-in-hot-path", 12}}));
}

TEST(DcmLintTest, RawNewColdSiteIsClean) {
  // The identical allocation in a free function nothing hot calls is fine,
  // even inside src/sim: cold setup may allocate.
  EXPECT_TRUE(lint_fixture("raw_new_cold.cc", "src/sim/node_pool.cc").empty());
  EXPECT_TRUE(lint_fixture("raw_new_cold.cc", "src/model/trainer.cc").empty());
}

TEST(DcmLintTest, CallGraphReachesTransitiveCallees) {
  // The allocation lives in a free helper, but EventQueue::pop calls it, so
  // the helper is hot by closure and the rule fires at the allocation site.
  const auto diags = lint_fixture("callgraph_transitive_fire.cc", "src/sim/jobs.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-raw-new-in-hot-path", 19}}));
}

// --- no-pointer-keyed-order ------------------------------------------------

TEST(DcmLintTest, PointerKeyedOrderFires) {
  const auto diags = lint_fixture("pointer_key_fire.cc", "src/ntier/vm_map.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-pointer-keyed-order", 10},
                                       {"no-pointer-keyed-order", 11},
                                       {"no-pointer-keyed-order", 12}}));
}

TEST(DcmLintTest, PointerKeyedOrderCleanFileIsClean) {
  EXPECT_TRUE(lint_fixture("pointer_key_clean.cc", "src/ntier/vm_map.cc").empty());
}

// --- no-unanchored-float-accumulate ----------------------------------------

TEST(DcmLintTest, FloatAccumulateFires) {
  const auto diags = lint_fixture("float_accumulate_fire.cc", "src/metrics/rate.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-unanchored-float-accumulate", 11},
                                       {"no-unanchored-float-accumulate", 17}}));
}

TEST(DcmLintTest, FloatAccumulateCleanFileIsClean) {
  // Local accumulators, members with a re-anchoring assignment, and
  // non-loop updates are all deterministic shapes.
  EXPECT_TRUE(lint_fixture("float_accumulate_clean.cc", "src/metrics/rate.cc").empty());
}

// --- layering & include cycles ---------------------------------------------

TEST(DcmLintTest, IncludeCycleIsReported) {
  const auto diags = lint_fixture_tree("tree_cycle");
  EXPECT_EQ(rules_fired(diags), (std::set<std::string>{"include-cycle"}));
}

TEST(DcmLintTest, UpwardIncludeIsLayeringViolation) {
  const auto diags = lint_fixture_tree("tree_upward");
  EXPECT_EQ(rules_fired(diags), (std::set<std::string>{"layering-violation"}));
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].path, "src/sim/engine.h");
  EXPECT_EQ(diags[0].line, 4);
}

TEST(DcmLintTest, CleanLayeredTreeIsClean) {
  EXPECT_TRUE(lint_fixture_tree("tree_clean").empty());
}

// --- suppression comments --------------------------------------------------

TEST(DcmLintTest, SuppressionCoversSameLineAndPrecedingLine) {
  const auto diags = lint_fixture("suppression.cc", "src/metrics/compare.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-float-eq", 14}}));
}

TEST(DcmLintTest, SuppressionScopeIsPinned) {
  // Regression: a trailing allow() must not leak onto the next line, and a
  // standalone allow() skips blank lines to the next code line.
  const auto diags = lint_fixture("suppression_scope.cc", "src/metrics/compare.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-float-eq", 5}}));
}

TEST(DcmLintTest, AllowListNamingTwoRulesSuppressesBoth) {
  const auto diags = lint_fixture("multi_rule_line.cc", "src/model/invariants.cc");
  // Line 8 (assert + float-eq) is fully suppressed; line 12 keeps its
  // no-float-eq finding because the allow() names only no-raw-assert.
  EXPECT_EQ(findings(diags), (Expected{{"no-float-eq", 12}}));
}

TEST(DcmLintTest, SuppressionIsPerRule) {
  const auto diags =
      lint_source("src/metrics/compare.cc",
                  "bool f(double x) { return x == 0.0; }  // dcm-lint: allow(no-raw-assert)\n");
  EXPECT_EQ(findings(diags), (Expected{{"no-float-eq", 1}}));
}

TEST(DcmLintTest, SuppressionDoesNotReachPastNextLine) {
  const auto diags = lint_source("src/metrics/compare.cc",
                                 "// dcm-lint: allow(no-float-eq)\n"
                                 "int pad;\n"
                                 "bool f(double x) { return x == 0.0; }\n");
  EXPECT_EQ(findings(diags), (Expected{{"no-float-eq", 3}}));
}

TEST(DcmLintTest, SuppressionAppliesToTreePasses) {
  const auto diags =
      lint_sources({{"src/sim/engine.h",
                     "#pragma once\n"
                     "// dcm-lint: allow(layering-violation)\n"
                     "#include \"control/policy.h\"\n"},
                    {"src/control/policy.h", "#pragma once\n"}});
  EXPECT_TRUE(diags.empty());
}

TEST(DcmLintTest, UnknownRuleInAllowIsReported) {
  const auto diags = lint_source("src/metrics/compare.cc",
                                 "int x;  // dcm-lint: allow(no-such-rule)\n");
  EXPECT_EQ(findings(diags), (Expected{{"unknown-suppression", 1}}));
}

TEST(DcmLintTest, TreePassSuppressionNamesAreKnown) {
  EXPECT_TRUE(is_known_rule("layering-violation"));
  EXPECT_TRUE(is_known_rule("include-cycle"));
}

TEST(DcmLintTest, HeaderSelfSufficiencySuppressionNameIsKnown) {
  EXPECT_TRUE(is_known_rule("header-self-sufficiency"));
  EXPECT_TRUE(lint_source("src/common/x.h",
                          "int x;  // dcm-lint: allow(header-self-sufficiency)\n")
                  .empty());
}

// --- lexer hardening -------------------------------------------------------

TEST(DcmLintTest, LexerRawStringDoesNotDesync) {
  const auto diags = lint_fixture("lexer_raw_string_fire.cc", "src/metrics/doc.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-float-eq", 4}}));
}

TEST(DcmLintTest, LexerRawStringContentIsNotCode) {
  EXPECT_TRUE(lint_fixture("lexer_raw_string_clean.cc", "src/metrics/doc.cc").empty());
}

TEST(DcmLintTest, LexerDigitSeparatorDoesNotDesync) {
  const auto diags = lint_fixture("lexer_digit_separator_fire.cc", "src/metrics/nums.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-float-eq", 5}}));
}

TEST(DcmLintTest, LexerDigitSeparatorCleanFileIsClean) {
  EXPECT_TRUE(lint_fixture("lexer_digit_separator_clean.cc", "src/metrics/nums.cc").empty());
}

TEST(DcmLintTest, LexerBomIsSkipped) {
  const auto diags = lint_fixture("lexer_bom_fire.cc", "src/metrics/bom.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-float-eq", 3}}));
}

TEST(DcmLintTest, LexerBomDoesNotBreakSuppression) {
  EXPECT_TRUE(lint_fixture("lexer_bom_clean.cc", "src/metrics/bom.cc").empty());
}

TEST(DcmLintTest, LexerLineContinuationKeepsLineNumbers) {
  const auto diags =
      lint_fixture("lexer_line_continuation_fire.cc", "src/metrics/splice.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-float-eq", 4}}));
}

TEST(DcmLintTest, LexerLineContinuationSwallowsCommentText) {
  EXPECT_TRUE(
      lint_fixture("lexer_line_continuation_clean.cc", "src/metrics/splice.cc").empty());
}

// --- baseline --------------------------------------------------------------

TEST(DcmLintTest, BaselineWaivesExactFindingOnce) {
  std::vector<Diagnostic> diags = {
      {"no-float-eq", "src/a.cc", 3, "m"},
      {"no-float-eq", "src/a.cc", 3, "m"},
      {"no-float-eq", "src/a.cc", 9, "m"},
  };
  const std::vector<BaselineEntry> baseline = {{"no-float-eq", "src/a.cc", 3}};
  const auto kept = apply_baseline(diags, baseline);
  // One entry waives one finding; the duplicate and the other line survive.
  EXPECT_EQ(findings(kept),
            (Expected{{"no-float-eq", 3}, {"no-float-eq", 9}}));
}

TEST(DcmLintTest, BaselineRoundTripsThroughFormat) {
  const std::vector<Diagnostic> diags = {{"no-wall-clock", "src/b.cc", 7, "m"}};
  const std::string text = format_baseline(diags);
  EXPECT_NE(text.find("no-wall-clock\tsrc/b.cc\t7"), std::string::npos);
}

// --- emitters --------------------------------------------------------------

TEST(DcmLintTest, JsonEmitterEscapesAndStructures) {
  const std::vector<Diagnostic> diags = {{"r", "src/a.cc", 1, "say \"hi\"\n"}};
  const std::string json = to_json(diags);
  EXPECT_NE(json.find("\"rule\":\"r\""), std::string::npos);
  EXPECT_NE(json.find("say \\\"hi\\\"\\n"), std::string::npos);
}

TEST(DcmLintTest, SarifEmitterListsRulesAndResults) {
  const std::vector<Diagnostic> diags = {{"no-float-eq", "src/a.cc", 2, "m"},
                                         {"no-wall-clock", "src/b.cc", 5, "m"}};
  const std::string sarif = to_sarif(diags);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("{\"id\": \"no-float-eq\"}"), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 5"), std::string::npos);
}

// --- engine determinism ----------------------------------------------------

TEST(DcmLintTest, DiagnosticsAreSortedAndStable) {
  const std::string content = read_fixture("randomness_fire.cc");
  const auto a = lint_source("src/workload/seedy.cc", content);
  const auto b = lint_source("src/workload/seedy.cc", content);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rule, b[i].rule);
    EXPECT_EQ(a[i].line, b[i].line);
    if (i > 0) {
      EXPECT_LE(a[i - 1].line, a[i].line);
    }
  }
}

// --- header-self-sufficiency (compiler-driven) -----------------------------

int compile_standalone(const std::string& header) {
  const std::string cmd = std::string(DCM_CXX_COMPILER) + " -std=c++20 -fsyntax-only -x c++ \"" +
                          std::string(DCM_LINT_FIXTURE_DIR) + "/" + header +
                          "\" > /dev/null 2>&1";
  return std::system(cmd.c_str());
}

TEST(DcmLintTest, HeaderSelfSufficiencyFires) {
  EXPECT_NE(compile_standalone("header_fire.h"), 0);
}

TEST(DcmLintTest, HeaderSelfSufficiencyCleanHeaderCompiles) {
  EXPECT_EQ(compile_standalone("header_clean.h"), 0);
}

}  // namespace
}  // namespace dcm::lint
