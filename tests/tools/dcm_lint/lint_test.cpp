// In-process tests for the dcm_lint rule engine, driven by the fixture
// corpus in fixtures/. Each rule has a firing and a non-firing fixture;
// fixtures are linted under virtual paths inside (or outside) each rule's
// scope, since scoping is part of the contract.
//
// The header-self-sufficiency rule has no token engine: its fixtures are
// compiled standalone with the real compiler (the same thing the
// dcm_header_selfcheck CMake target does to every src/**/*.h).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "dcm_lint/linter.h"

namespace dcm::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(DCM_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<Diagnostic> lint_fixture(const std::string& name,
                                     const std::string& virtual_path) {
  return lint_source(virtual_path, read_fixture(name));
}

/// (rule, line) pairs, for order-insensitive comparison.
std::multiset<std::pair<std::string, int>> findings(const std::vector<Diagnostic>& diags) {
  std::multiset<std::pair<std::string, int>> out;
  for (const auto& d : diags) out.emplace(d.rule, d.line);
  return out;
}

using Expected = std::multiset<std::pair<std::string, int>>;

// --- no-wall-clock ---------------------------------------------------------

TEST(DcmLintTest, WallClockFires) {
  const auto diags = lint_fixture("wall_clock_fire.cc", "src/core/clocky.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-wall-clock", 7}, {"no-wall-clock", 11}}));
}

TEST(DcmLintTest, WallClockCleanFileIsClean) {
  EXPECT_TRUE(lint_fixture("wall_clock_clean.cc", "src/core/clocky.cc").empty());
}

TEST(DcmLintTest, WallClockScopedToSrc) {
  // Benches and tools may read the host clock; the rule only covers src/.
  EXPECT_TRUE(lint_fixture("wall_clock_fire.cc", "bench/timer.cc").empty());
}

// --- no-ambient-randomness -------------------------------------------------

TEST(DcmLintTest, AmbientRandomnessFires) {
  const auto diags = lint_fixture("randomness_fire.cc", "src/workload/seedy.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-ambient-randomness", 7},
                                       {"no-ambient-randomness", 11},
                                       {"no-ambient-randomness", 13}}));
}

TEST(DcmLintTest, AmbientRandomnessCleanFileIsClean) {
  EXPECT_TRUE(lint_fixture("randomness_clean.cc", "src/workload/seedy.cc").empty());
}

TEST(DcmLintTest, AmbientRandomnessCoversSweepCli) {
  // The sweep CLI feeds seeds into experiments; a stray rand() there would
  // break the bit-identical --jobs 1 vs --jobs N guarantee.
  EXPECT_FALSE(lint_fixture("randomness_fire.cc", "tools/dcm_run/main.cpp").empty());
}

// --- no-unordered-iteration ------------------------------------------------

TEST(DcmLintTest, UnorderedIterationFires) {
  const auto diags = lint_fixture("unordered_iter_fire.cc", "src/control/spread.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-unordered-iteration", 9},
                                       {"no-unordered-iteration", 17}}));
}

TEST(DcmLintTest, UnorderedIterationCleanFileIsClean) {
  EXPECT_TRUE(lint_fixture("unordered_iter_clean.cc", "src/control/spread.cc").empty());
}

TEST(DcmLintTest, UnorderedIterationScopedToEventOrderCode) {
  // Outside src/{sim,ntier,control,scenario}, hash-order iteration cannot
  // reach the event stream; fit/ code may iterate freely.
  EXPECT_TRUE(lint_fixture("unordered_iter_fire.cc", "src/fit/spread.cc").empty());
}

TEST(DcmLintTest, UnorderedIterationCoversSweepMerge) {
  // Hash-order iteration in the scenario layer or the sweep CLI would leak
  // into run ordering and break sweep-digest invariance across job counts.
  EXPECT_FALSE(lint_fixture("unordered_iter_fire.cc", "src/scenario/sweep.cc").empty());
  EXPECT_FALSE(lint_fixture("unordered_iter_fire.cc", "tools/dcm_run/main.cpp").empty());
}

// --- no-raw-assert ---------------------------------------------------------

TEST(DcmLintTest, RawAssertFires) {
  const auto diags = lint_fixture("raw_assert_fire.cc", "src/model/invariants.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-raw-assert", 3}, {"no-raw-assert", 6}}));
}

TEST(DcmLintTest, RawAssertCleanFileIsClean) {
  EXPECT_TRUE(lint_fixture("raw_assert_clean.cc", "src/model/invariants.cc").empty());
}

TEST(DcmLintTest, RawAssertAppliesToTests) {
  EXPECT_FALSE(lint_fixture("raw_assert_fire.cc", "tests/model/invariants_test.cpp").empty());
}

// --- no-float-eq -----------------------------------------------------------

TEST(DcmLintTest, FloatEqFires) {
  const auto diags = lint_fixture("float_eq_fire.cc", "src/metrics/compare.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-float-eq", 2},
                                       {"no-float-eq", 4},
                                       {"no-float-eq", 6}}));
}

TEST(DcmLintTest, FloatEqCleanFileIsClean) {
  EXPECT_TRUE(lint_fixture("float_eq_clean.cc", "src/metrics/compare.cc").empty());
}

// --- no-raw-new-in-hot-path ------------------------------------------------

TEST(DcmLintTest, RawNewFires) {
  const auto diags = lint_fixture("raw_new_fire.cc", "src/sim/node_pool.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-raw-new-in-hot-path", 8},
                                       {"no-raw-new-in-hot-path", 10}}));
}

TEST(DcmLintTest, RawNewCleanFileIsClean) {
  EXPECT_TRUE(lint_fixture("raw_new_clean.cc", "src/sim/node_pool.cc").empty());
}

TEST(DcmLintTest, RawNewCoversRequestPath) {
  // The allocation-free invariant extends through the tier/server request
  // path: src/ntier is in scope alongside src/sim.
  const auto diags = lint_fixture("raw_new_fire.cc", "src/ntier/node_pool.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-raw-new-in-hot-path", 8},
                                       {"no-raw-new-in-hot-path", 10}}));
}

TEST(DcmLintTest, RawNewScopedToHotPath) {
  // Outside the sim core and the request path (e.g. the model fitter, which
  // runs once per control period, not per event) the invariant does not
  // apply.
  EXPECT_TRUE(lint_fixture("raw_new_fire.cc", "src/model/trainer.cc").empty());
  EXPECT_TRUE(lint_fixture("raw_new_fire.cc", "src/workload/servlet.cc").empty());
}

// --- suppression comments --------------------------------------------------

TEST(DcmLintTest, SuppressionCoversSameLineAndPrecedingLine) {
  const auto diags = lint_fixture("suppression.cc", "src/metrics/compare.cc");
  EXPECT_EQ(findings(diags), (Expected{{"no-float-eq", 14}}));
}

TEST(DcmLintTest, AllowListNamingTwoRulesSuppressesBoth) {
  const auto diags = lint_fixture("multi_rule_line.cc", "src/model/invariants.cc");
  // Line 8 (assert + float-eq) is fully suppressed; line 12 keeps its
  // no-float-eq finding because the allow() names only no-raw-assert.
  EXPECT_EQ(findings(diags), (Expected{{"no-float-eq", 12}}));
}

TEST(DcmLintTest, SuppressionIsPerRule) {
  const auto diags =
      lint_source("src/metrics/compare.cc",
                  "bool f(double x) { return x == 0.0; }  // dcm-lint: allow(no-raw-assert)\n");
  EXPECT_EQ(findings(diags), (Expected{{"no-float-eq", 1}}));
}

TEST(DcmLintTest, SuppressionDoesNotReachPastNextLine) {
  const auto diags = lint_source("src/metrics/compare.cc",
                                 "// dcm-lint: allow(no-float-eq)\n"
                                 "int pad;\n"
                                 "bool f(double x) { return x == 0.0; }\n");
  EXPECT_EQ(findings(diags), (Expected{{"no-float-eq", 3}}));
}

TEST(DcmLintTest, UnknownRuleInAllowIsReported) {
  const auto diags = lint_source("src/metrics/compare.cc",
                                 "int x;  // dcm-lint: allow(no-such-rule)\n");
  EXPECT_EQ(findings(diags), (Expected{{"unknown-suppression", 1}}));
}

TEST(DcmLintTest, HeaderSelfSufficiencySuppressionNameIsKnown) {
  EXPECT_TRUE(is_known_rule("header-self-sufficiency"));
  EXPECT_TRUE(lint_source("src/common/x.h",
                          "int x;  // dcm-lint: allow(header-self-sufficiency)\n")
                  .empty());
}

// --- engine determinism ----------------------------------------------------

TEST(DcmLintTest, DiagnosticsAreSortedAndStable) {
  const std::string content = read_fixture("randomness_fire.cc");
  const auto a = lint_source("src/workload/seedy.cc", content);
  const auto b = lint_source("src/workload/seedy.cc", content);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rule, b[i].rule);
    EXPECT_EQ(a[i].line, b[i].line);
    if (i > 0) {
      EXPECT_LE(a[i - 1].line, a[i].line);
    }
  }
}

// --- header-self-sufficiency (compiler-driven) -----------------------------

int compile_standalone(const std::string& header) {
  const std::string cmd = std::string(DCM_CXX_COMPILER) + " -std=c++20 -fsyntax-only -x c++ \"" +
                          std::string(DCM_LINT_FIXTURE_DIR) + "/" + header +
                          "\" > /dev/null 2>&1";
  return std::system(cmd.c_str());
}

TEST(DcmLintTest, HeaderSelfSufficiencyFires) {
  EXPECT_NE(compile_standalone("header_fire.h"), 0);
}

TEST(DcmLintTest, HeaderSelfSufficiencyCleanHeaderCompiles) {
  EXPECT_EQ(compile_standalone("header_clean.h"), 0);
}

}  // namespace
}  // namespace dcm::lint
