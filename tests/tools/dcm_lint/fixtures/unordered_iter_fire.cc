// Fixture: no-unordered-iteration positive — hash-order iteration feeds
// implementation-defined order into control decisions.
#include <unordered_map>
#include <unordered_set>

double total_load(const std::unordered_map<int, double>& load_by_vm_arg) {
  std::unordered_map<int, double> load_by_vm = load_by_vm_arg;
  double total = 0.0;
  for (const auto& [vm, load] : load_by_vm) {
    total += load;
  }
  return total;
}

int literal_set_sum() {
  int sum = 0;
  for (int x : std::unordered_set<int>{1, 2, 3}) sum += x;
  return sum;
}
