// Fixture: no-float-eq negative — integer equality, hex masks, and
// tolerance-based float comparison are all fine.
#include <cmath>

bool empty_count(int count) { return count == 0; }

bool has_flag(unsigned flags) { return (flags & 0x10) == 0x10; }

bool nearly_equal(double a, double b) { return std::fabs(a - b) < 1e-9; }

bool ordered(double a, double b) { return a < b; }
