// Fixture: no-pointer-keyed-order negative — ordered containers keyed on
// stable ids, pointer *values* (not keys), and pointer-keyed unordered
// lookups (no iteration-order exposure; iterating one is
// no-unordered-iteration's business) are all fine.
#include <map>
#include <set>
#include <string>
#include <unordered_map>

struct Vm {
  int id = 0;
};

std::map<int, double> utilization_by_id;
std::map<std::string, Vm*> vm_by_name;
std::set<std::pair<int, int>> edges;
std::unordered_map<const Vm*, double> scratch_lookup;
