// Fixture: no-raw-assert positive — assert() compiles out under NDEBUG, so
// release builds skip the invariant.
#include <cassert>

int checked_halve(int n) {
  assert(n % 2 == 0);
  return n / 2;
}
