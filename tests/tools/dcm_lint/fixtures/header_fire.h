// Fixture: header-self-sufficiency positive — uses std::string without
// including <string>, so compiling this header standalone must fail.
#pragma once

inline std::string greeting() { return "hello"; }
