// Fixture: no-raw-assert negative — DCM_CHECK/DCM_DCHECK and static_assert
// are the sanctioned forms; identifiers containing "assert" are fine.
#include "common/check.h"

static_assert(sizeof(int) >= 4, "platform check");

int checked_halve(int n) {
  DCM_CHECK(n % 2 == 0);
  DCM_DCHECK(n >= 0);
  return n / 2;
}

int assert_count_total(int assert_count) { return assert_count + 1; }
