// Fixture: no-unanchored-float-accumulate positive — a long-lived double
// updated incrementally inside a loop, with no re-anchoring assignment
// anywhere in the file. The drift this rule hunts was fixed by hand twice
// (SlidingRate, CpuScheduler) before it became a rule.
#include <vector>

class RateTracker {
 public:
  void absorb(const std::vector<double>& samples) {
    for (const double s : samples) {
      sum_ += s;
    }
  }

  void evict(const std::vector<double>& samples) {
    for (const double s : samples) {
      sum_ -= s;
    }
  }

  double sum() const { return sum_; }

 private:
  double sum_ = 0.0;
};
