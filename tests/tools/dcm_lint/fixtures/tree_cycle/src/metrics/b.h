#pragma once
#include "metrics/a.h"
