// Fixture: two headers in one module including each other — an include
// cycle, with no layering violation.
#pragma once
#include "metrics/b.h"
