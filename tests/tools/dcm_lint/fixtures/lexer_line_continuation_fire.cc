// Fixture: line-continuation handling -- the backslash splices line 3 into
// this comment, so the comparison on line 4 fires at its true line. \
this text is still comment: rand() time(nullptr)
bool f(double x) { return x == 0.0; }
