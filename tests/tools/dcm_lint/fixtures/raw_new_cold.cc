// Fixture: no-raw-new-in-hot-path negative — the identical allocation in a
// free function nothing on the hot path calls. Cold allocation (config
// parsing, one-shot setup) is fine even inside src/sim.
struct Node {
  int value = 0;
};

int heap_round_trip(int v) {
  Node* node = new Node{v};
  const int out = node->value;
  delete node;
  return out;
}
