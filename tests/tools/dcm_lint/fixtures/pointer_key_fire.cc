// Fixture: no-pointer-keyed-order positive — ordered containers keyed on a
// pointer sort by address, which ASLR reshuffles every run.
#include <map>
#include <set>

struct Vm {
  int id = 0;
};

std::map<Vm*, double> utilization_by_vm;
std::set<const Vm*> draining;
std::multimap<Vm*, int> events_by_vm;
