// Fixture: suppression-comment handling. Lines 6 and 11 are suppressed
// (same-line and preceding-line forms); line 14 still fires.
#include <cstdlib>

bool same_line(double x) {
  return x == 0.0;  // dcm-lint: allow(no-float-eq)
}

bool preceding_line(double y) {
  // dcm-lint: allow(no-float-eq)
  return y == 1.0;
}

bool unsuppressed(double z) { return z == 2.0; }
