#pragma once
#include "common/util.h"
