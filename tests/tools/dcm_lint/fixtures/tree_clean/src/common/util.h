// Fixture: a clean layered mini-tree — every include points downward.
#pragma once
