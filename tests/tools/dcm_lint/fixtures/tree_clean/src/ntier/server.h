#pragma once
#include "common/util.h"
#include "sim/engine.h"
