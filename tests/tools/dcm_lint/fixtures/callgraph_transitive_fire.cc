// Fixture: call-graph reachability — the allocation lives in a free helper,
// but a hot-path seed method (`EventQueue::pop`) calls it, so the helper is
// hot by transitivity and the rule fires there.
struct Job {
  int id = 0;
};

Job* make_job(int id);

class EventQueue {
 public:
  Job* pop() { return make_job(next_++); }

 private:
  int next_ = 0;
};

Job* make_job(int id) {
  return new Job{id};
}
