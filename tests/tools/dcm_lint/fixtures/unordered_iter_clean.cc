// Fixture: no-unordered-iteration negative — ordered containers iterate
// deterministically, and keyed lookups into unordered maps are fine.
#include <map>
#include <unordered_map>
#include <vector>

double ordered_total(const std::map<int, double>& load_by_vm) {
  double total = 0.0;
  for (const auto& [vm, load] : load_by_vm) total += load;
  return total;
}

double lookup_only(std::unordered_map<int, double>& cache, const std::vector<int>& keys) {
  double total = 0.0;
  for (int key : keys) total += cache[key];
  return total;
}
