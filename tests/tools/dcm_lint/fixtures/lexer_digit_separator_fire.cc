// Fixture: lexer digit-separator handling — the ' in 1'000'000 is part of
// the number, not a char-literal open; the comparison on line 5 still fires.
long kBig = 1'000'000;
double kRate = 12'345.678'9;
bool f(double x) { return x == 0.0; }
