// Fixture: no-unanchored-float-accumulate negative — three deterministic
// shapes: a per-call local accumulator, a member with a re-anchoring
// assignment elsewhere in the file (the SlidingRate pattern), and a
// non-loop member update.
#include <vector>

class RateTracker {
 public:
  // Local accumulator: fresh every call, evaluation order fixed.
  static double total(const std::vector<double>& samples) {
    double acc = 0.0;
    for (const double s : samples) acc += s;
    return acc;
  }

  void absorb(const std::vector<double>& samples) {
    for (const double s : samples) sum_ += s;
  }

  void drain() {
    // Re-anchor: absolute assignment kills accumulated drift.
    sum_ = 0.0;
  }

  void bump(double s) { bias_ += s; }  // not in a loop

 private:
  double sum_ = 0.0;
  double bias_ = 0.0;
};
