#pragma once
