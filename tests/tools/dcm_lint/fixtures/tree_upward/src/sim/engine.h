// Fixture: an upward include — sim is below control in the layer DAG and
// may not see it.
#pragma once
#include "control/policy.h"
