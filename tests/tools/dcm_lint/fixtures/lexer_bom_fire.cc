﻿// Fixture: UTF-8 BOM handling — the BOM must be skipped, not lexed as stray
// punctuation; the comparison on line 3 fires at its true line.
bool f(double x) { return x == 0.0; }
