// Fixture: no-wall-clock negative — sim time from the engine, identifiers
// merely containing "time", and member functions named time() are all fine.
#include "sim/engine.h"
#include "sim/time.h"

double sample_at(dcm::sim::Engine& engine, double service_time) {
  return dcm::sim::to_seconds(engine.now()) + service_time;
}

struct Stamped {
  double time() const { return stamp; }
  double stamp = 0.0;
};

double member_named_time(const Stamped& s) { return s.time(); }

double inflated_service_time(double n) { return 1.0 + 0.01 * n; }
