// Fixture: lexer raw-string handling — the embedded quote and parens must
// not end the literal early, so the comparison after it fires at line 4.
const char* kDoc = R"(a "quoted" bit with (parens) and fake x == 0.0 text)";
bool f(double x) { return x == 0.0; }
