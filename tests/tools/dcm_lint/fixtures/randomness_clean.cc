// Fixture: no-ambient-randomness negative — seeded Rng streams, identifiers
// that merely contain "rand", and member calls named rand() are fine.
#include "common/rng.h"

double seeded_draw(dcm::Rng& rng) { return rng.next_double(); }

struct FakeDie {
  int rand() const { return 4; }
};

int member_named_rand(const FakeDie& die) { return die.rand(); }

int grand_total(int operand) { return operand + 1; }
