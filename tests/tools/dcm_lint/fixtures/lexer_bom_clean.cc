﻿// Fixture: UTF-8 BOM negative — a BOM must not desync comment positions:
// the trailing allow() below still suppresses its own line.
bool f(double x) { return x == 0.0; }  // dcm-lint: allow(no-float-eq)
