// Fixture: line-continuation negative -- everything spliced into the
// comment is comment, including violation-looking text. \
   x == 0.0 rand() time(nullptr) assert(1)
int ok = 1;
