// Fixture: no-wall-clock negative — the same host-clock accesses in a free
// function no seed reaches. Cold code (setup, reporting) may read the host
// clock; only hot-path code is banned.
#include <chrono>
#include <ctime>

double wall_now_seconds() {
  const auto tp = std::chrono::system_clock::now();
  return std::chrono::duration<double>(tp.time_since_epoch()).count();
}

long raw_epoch() { return time(nullptr); }
