// Fixture: no-raw-new-in-hot-path positive — per-event heap churn inside a
// hot-path seed class (`Server`).
struct Node {
  int value = 0;
};

class Server {
 public:
  int heap_round_trip(int v) {
    Node* node = new Node{v};
    const int out = node->value;
    delete node;
    return out;
  }
};
