// Fixture: no-raw-new-in-hot-path positive — per-event heap churn in the
// sim core.
struct Node {
  int value = 0;
};

int heap_round_trip(int v) {
  Node* node = new Node{v};
  const int out = node->value;
  delete node;
  return out;
}
