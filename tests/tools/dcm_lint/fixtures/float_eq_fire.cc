// Fixture: no-float-eq positive — exact equality against float literals.
bool at_origin(double x) { return x == 0.0; }

bool not_tiny(double y) { return y != 1e-9; }

bool negative_unit(double z) { return z == -1.5; }
