// Fixture: no-ambient-randomness positive — nondeterministic seeds and the
// C PRNG break bit-for-bit replay. `CpuScheduler` is a hot-path seed.
#include <cstdlib>
#include <random>

class CpuScheduler {
 public:
  unsigned nondeterministic_seed() {
    std::random_device rd;
    return rd();
  }

  void seed_c_prng(unsigned s) { srand(s); }

  int c_draw() { return rand() % 6; }
};
