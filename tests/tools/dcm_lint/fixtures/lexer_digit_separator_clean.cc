// Fixture: lexer digit-separator negative — separated literals and a real
// char literal right after them lex cleanly, with no finding.
long kBig = 2'000'000;
char kSep = ',';
unsigned kMask = 0xFF'FF'00'00;
