// Fixture: several rules firing on one line, and allow() lists naming more
// than one rule. Line 8 violates no-raw-assert AND no-float-eq; both are
// suppressed by the single two-rule allow(). Line 11 has the same double
// violation but only suppresses no-raw-assert, so no-float-eq still fires.
#include <cassert>  // dcm-lint: allow(no-raw-assert)

void both_suppressed(double x) {
  assert(x == 1.0);  // dcm-lint: allow(no-raw-assert, no-float-eq)
}

void half_suppressed(double y) {
  assert(y == 2.0);  // dcm-lint: allow(no-raw-assert)
}
