// Fixture: lexer raw-string negative — violation-looking text inside a
// delimited raw string is string content, not code.
const char* kDoc = R"delim(x == 0.0, rand(), time(nullptr), assert(true))delim";
const char* kMore = R"(unbalanced " quote and ) paren)";
