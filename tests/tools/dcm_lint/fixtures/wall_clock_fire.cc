// Fixture: no-wall-clock positive — host clocks leak real time into sim
// results. Linted under a virtual src/ path.
#include <chrono>
#include <ctime>

double wall_now_seconds() {
  const auto tp = std::chrono::system_clock::now();
  return std::chrono::duration<double>(tp.time_since_epoch()).count();
}

long raw_epoch() { return time(nullptr); }
