// Fixture: no-wall-clock positive — host clocks on the hot path leak real
// time into sim results. `Server` is a hot-path seed, so both methods are
// reachable; linted under a virtual src/ path.
#include <chrono>
#include <ctime>

class Server {
 public:
  double wall_now_seconds() {
    const auto tp = std::chrono::system_clock::now();
    return std::chrono::duration<double>(tp.time_since_epoch()).count();
  }

  long raw_epoch() { return time(nullptr); }
};
