// Fixture: header-self-sufficiency negative — carries every include it
// needs, so it compiles standalone.
#pragma once

#include <string>

inline std::string greeting() { return "hello"; }
