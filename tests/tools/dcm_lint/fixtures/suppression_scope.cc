// Fixture: suppression scope — a trailing allow() covers only its own
// line (so line 5 still fires), and a standalone allow() pins to the first
// following non-blank line (so line 9 is suppressed across the blank).
bool a(double x) { return x == 0.0; }  // dcm-lint: allow(no-float-eq)
bool b(double y) { return y == 1.0; }

// dcm-lint: allow(no-float-eq)

bool c(double z) { return z == 2.0; }
