// Fixture: no-raw-new-in-hot-path negative — deleted special members, the
// <new> header include, and slab-style reuse don't allocate per event.
#include <new>
#include <vector>

class Slab {
 public:
  Slab() = default;
  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  int acquire() {
    if (!free_.empty()) {
      const int slot = free_.back();
      free_.pop_back();
      return slot;
    }
    slots_.push_back(0);
    return static_cast<int>(slots_.size()) - 1;
  }

  void release(int slot) { free_.push_back(slot); }

 private:
  std::vector<int> slots_;
  std::vector<int> free_;
};
