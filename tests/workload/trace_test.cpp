#include "workload/trace.h"

#include <gtest/gtest.h>

#include "core/topologies.h"
#include "workload/trace_player.h"

namespace dcm::workload {
namespace {

TEST(TraceTest, UsersAtStepBoundaries) {
  Trace trace({10, 20, 30});
  EXPECT_EQ(trace.users_at(0), 10);
  EXPECT_EQ(trace.users_at(sim::from_seconds(0.999)), 10);
  EXPECT_EQ(trace.users_at(sim::from_seconds(1.0)), 20);
  EXPECT_EQ(trace.users_at(sim::from_seconds(2.5)), 30);
}

TEST(TraceTest, ClampsBeyondEnd) {
  Trace trace({10, 20});
  EXPECT_EQ(trace.users_at(sim::from_seconds(100.0)), 20);
}

TEST(TraceTest, EmptyTraceIsZero) {
  Trace trace;
  EXPECT_EQ(trace.users_at(0), 0);
  EXPECT_EQ(trace.step_count(), 0u);
}

TEST(TraceTest, Statistics) {
  Trace trace({10, 20, 30});
  EXPECT_EQ(trace.max_users(), 30);
  EXPECT_DOUBLE_EQ(trace.mean_users(), 20.0);
  EXPECT_EQ(trace.duration(), sim::from_seconds(3.0));
}

TEST(TraceTest, ScaledRounds) {
  Trace trace({10, 15});
  const Trace scaled = trace.scaled(1.5);
  EXPECT_EQ(scaled.values(), (std::vector<int>{15, 23}));
}

TEST(TraceTest, CsvRoundTrip) {
  const std::string path = testing::TempDir() + "/dcm_trace_test.csv";
  Trace original({5, 10, 7});
  original.save_csv(path);
  const Trace loaded = Trace::load_csv(path);
  EXPECT_EQ(loaded.values(), original.values());
}

TEST(TraceTest, LargeVariationShape) {
  const Trace trace = Trace::large_variation();
  EXPECT_NEAR(static_cast<double>(trace.step_count()), 700.0, 2.0);
  // Three bursts the paper narrates.
  EXPECT_GT(trace.users_at(sim::from_seconds(75.0)), 220);
  EXPECT_GT(trace.users_at(sim::from_seconds(240.0)), 260);
  EXPECT_GT(trace.users_at(sim::from_seconds(545.0)), 220);
  // Deep trough before the third burst.
  EXPECT_LT(trace.users_at(sim::from_seconds(480.0)), 110);
  // Calm start.
  EXPECT_LT(trace.users_at(sim::from_seconds(10.0)), 150);
}

TEST(TraceTest, LargeVariationDeterministicPerSeed) {
  EXPECT_EQ(Trace::large_variation(7).values(), Trace::large_variation(7).values());
  EXPECT_NE(Trace::large_variation(7).values(), Trace::large_variation(8).values());
}

TEST(TraceTest, Synthesizers) {
  const Trace flat = Trace::flat(50, 10);
  EXPECT_EQ(flat.step_count(), 10u);
  EXPECT_EQ(flat.max_users(), 50);

  const Trace square = Trace::square(10, 90, 20, 40);
  EXPECT_EQ(square.users_at(sim::from_seconds(5.0)), 10);
  EXPECT_EQ(square.users_at(sim::from_seconds(15.0)), 90);

  const Trace sine = Trace::sine(0, 100, 60, 60);
  EXPECT_NEAR(sine.users_at(sim::from_seconds(15.0)), 100, 3);
  EXPECT_NEAR(sine.users_at(sim::from_seconds(45.0)), 0, 3);
}

TEST(TracePlayerTest, DrivesGeneratorAlongTrace) {
  sim::Engine engine;
  ntier::NTierApp app(engine, core::rubbos_app_config({1, 1, 1}, {1000, 100, 80}));
  const ServletCatalog catalog = ServletCatalog::browse_only_mix();
  auto generator = make_rubbos_clients(engine, app, catalog, 1);
  const Trace trace({10, 10, 10, 40, 40, 40, 5, 5, 5});
  TracePlayer player(engine, *generator, trace);
  player.start();
  engine.run_until(sim::from_seconds(1.5));
  EXPECT_EQ(generator->user_count(), 10);
  engine.run_until(sim::from_seconds(4.5));
  EXPECT_EQ(generator->user_count(), 40);
  engine.run_until(sim::from_seconds(7.5));
  EXPECT_EQ(generator->user_count(), 5);
  EXPECT_FALSE(player.finished(engine.now()));
  engine.run_until(sim::from_seconds(10.0));
  EXPECT_TRUE(player.finished(engine.now()));
  player.stop();
  engine.run_until(sim::from_seconds(20.0));
  EXPECT_EQ(generator->live_users(), 0);
}

}  // namespace
}  // namespace dcm::workload
