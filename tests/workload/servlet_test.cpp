#include "workload/servlet.h"

#include <gtest/gtest.h>

#include <map>

namespace dcm::workload {
namespace {

TEST(ServletCatalogTest, HasTwentyFourInteractions) {
  const ServletCatalog catalog = ServletCatalog::browse_only_mix();
  EXPECT_EQ(catalog.size(), 24u);
}

TEST(ServletCatalogTest, BrowseOnlyMixWeightsOnlyReadServlets) {
  const ServletCatalog catalog = ServletCatalog::browse_only_mix();
  int weighted = 0;
  for (size_t i = 0; i < catalog.size(); ++i) {
    const Servlet& s = catalog.servlet(i);
    if (s.weight > 0.0) {
      ++weighted;
      // All browse-only interactions are reads.
      EXPECT_EQ(s.name.find("Store"), std::string::npos) << s.name;
      EXPECT_EQ(s.name.find("Post"), std::string::npos) << s.name;
    }
  }
  EXPECT_EQ(weighted, 9);
}

TEST(ServletCatalogTest, NormalizedMeanScalesAreUnity) {
  const ServletCatalog catalog = ServletCatalog::browse_only_mix();
  EXPECT_NEAR(catalog.mean_scale(0), 1.0, 1e-9);
  EXPECT_NEAR(catalog.mean_scale(1), 1.0, 1e-9);
}

TEST(ServletCatalogTest, MeanDbQueriesNearVisitRatio) {
  const ServletCatalog catalog = ServletCatalog::browse_only_mix(2.0);
  EXPECT_NEAR(catalog.mean_db_queries(), 2.0, 0.15);
}

TEST(ServletCatalogTest, SamplingFollowsWeights) {
  const ServletCatalog catalog = ServletCatalog::browse_only_mix();
  Rng rng(99);
  std::map<size_t, int> hits;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hits[catalog.sample(rng)];
  // Zero-weight servlets never drawn.
  for (size_t i = 0; i < catalog.size(); ++i) {
    // Weights are exact configured constants, not computed values.
    if (catalog.servlet(i).weight == 0.0) {  // dcm-lint: allow(no-float-eq)
      EXPECT_EQ(hits.count(i), 0u) << i;
    }
  }
  // ViewStory (weight .25) drawn about 25% of the time.
  size_t view_story = 0;
  for (size_t i = 0; i < catalog.size(); ++i) {
    if (catalog.servlet(i).name == "ViewStory") view_story = i;
  }
  EXPECT_NEAR(static_cast<double>(hits[view_story]) / n, 0.25, 0.01);
}

TEST(ServletCatalogTest, MakeRequestBuildsThreeTierPlan) {
  const ServletCatalog catalog = ServletCatalog::browse_only_mix();
  const auto req = catalog.make_request(42, 0, sim::from_seconds(1.0));
  EXPECT_EQ(req->id, 42u);
  EXPECT_EQ(req->servlet, 0);
  ASSERT_EQ(req->demand_scale.size(), 3u);
  ASSERT_EQ(req->downstream_calls.size(), 3u);
  EXPECT_EQ(req->downstream_calls[0], 1);  // web → app
  EXPECT_EQ(req->downstream_calls[1], catalog.servlet(0).db_queries);
  EXPECT_EQ(req->downstream_calls[2], 0);  // leaf
}

TEST(ServletCatalogTest, CustomCatalogValidation) {
  // A one-servlet catalog works.
  ServletCatalog single({{"Only", 1.0, 1.0, 1.0, 1.0, 2}});
  Rng rng(1);
  EXPECT_EQ(single.sample(rng), 0u);
  EXPECT_DOUBLE_EQ(single.mean_db_queries(), 2.0);
}

}  // namespace
}  // namespace dcm::workload
