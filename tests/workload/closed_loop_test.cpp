#include "workload/closed_loop.h"

#include <gtest/gtest.h>

#include "core/topologies.h"

namespace dcm::workload {
namespace {

class ClosedLoopTest : public ::testing::Test {
 protected:
  ClosedLoopTest()
      : app_(engine_, core::rubbos_app_config({1, 1, 1}, {1000, 100, 80})),
        catalog_(ServletCatalog::browse_only_mix()) {}

  sim::Engine engine_;
  ntier::NTierApp app_;
  ServletCatalog catalog_;
};

TEST_F(ClosedLoopTest, JmeterMaintainsExactConcurrency) {
  auto generator = make_jmeter(engine_, app_, catalog_, 15);
  generator->start();
  engine_.run_until(sim::from_seconds(5.0));
  EXPECT_EQ(generator->live_users(), 15);
  // Zero think time ⇒ every user has exactly one request in flight, and
  // each holds a front-tier (Apache) worker for its whole lifetime.
  EXPECT_EQ(app_.tier(0).total_in_flight(), 15);
}

TEST_F(ClosedLoopTest, CompletionsAreRecorded) {
  auto generator = make_jmeter(engine_, app_, catalog_, 5);
  generator->start();
  engine_.run_until(sim::from_seconds(10.0));
  EXPECT_GT(generator->stats().completed(), 100u);
  EXPECT_EQ(generator->stats().errors(), 0u);
  EXPECT_GT(generator->stats().response_time_stats().mean(), 0.0);
}

TEST_F(ClosedLoopTest, ThinkTimeThrottlesThroughput) {
  auto thinky = make_rubbos_clients(engine_, app_, catalog_, 30, 3.0);
  thinky->start();
  engine_.run_until(sim::from_seconds(60.0));
  // 30 users with 3 s think and fast responses → ~10 req/s.
  const double x = thinky->stats().mean_throughput(sim::from_seconds(20.0),
                                                   sim::from_seconds(60.0));
  EXPECT_NEAR(x, 10.0, 1.5);
}

TEST_F(ClosedLoopTest, RampUpAddsUsers) {
  auto generator = make_rubbos_clients(engine_, app_, catalog_, 10);
  generator->start();
  engine_.run_until(sim::from_seconds(5.0));
  generator->set_user_count(50);
  engine_.run_until(sim::from_seconds(10.0));
  EXPECT_EQ(generator->live_users(), 50);
}

TEST_F(ClosedLoopTest, RampDownParksUsers) {
  auto generator = make_jmeter(engine_, app_, catalog_, 40);
  generator->start();
  engine_.run_until(sim::from_seconds(5.0));
  generator->set_user_count(10);
  engine_.run_until(sim::from_seconds(10.0));
  EXPECT_EQ(generator->live_users(), 10);
}

TEST_F(ClosedLoopTest, StopDrainsAllUsers) {
  auto generator = make_jmeter(engine_, app_, catalog_, 20);
  generator->start();
  engine_.run_until(sim::from_seconds(5.0));
  generator->stop();
  engine_.run_until(sim::from_seconds(15.0));
  EXPECT_EQ(generator->live_users(), 0);
  int total = 0;
  for (size_t i = 0; i < app_.tier_count(); ++i) total += app_.tier(i).total_in_flight();
  EXPECT_EQ(total, 0);
}

TEST_F(ClosedLoopTest, ZeroUsersIsValid) {
  auto generator = make_jmeter(engine_, app_, catalog_, 0);
  generator->start();
  engine_.run_until(sim::from_seconds(5.0));
  EXPECT_EQ(generator->stats().completed(), 0u);
}

TEST_F(ClosedLoopTest, DeterministicAcrossRuns) {
  uint64_t completed_first = 0;
  for (int run = 0; run < 2; ++run) {
    sim::Engine engine;
    ntier::NTierApp app(engine, core::rubbos_app_config({1, 1, 1}, {1000, 100, 80}, /*seed=*/7));
    auto generator = make_rubbos_clients(engine, app, catalog_, 50, 3.0, /*seed=*/7);
    generator->start();
    engine.run_until(sim::from_seconds(30.0));
    if (run == 0) {
      completed_first = generator->stats().completed();
    } else {
      EXPECT_EQ(generator->stats().completed(), completed_first);
    }
  }
}

TEST_F(ClosedLoopTest, CustomFactoryIsUsed) {
  int calls = 0;
  RequestFactory factory = [&](sim::Arena*, uint64_t id, Rng&, sim::SimTime now) {
    ++calls;
    auto req = std::make_shared<ntier::RequestContext>();
    req->id = id;
    req->created = now;
    req->demand_scale = {1.0, 1.0, 1.0};
    req->downstream_calls = {1, 1, 0};
    return req;
  };
  ClosedLoopConfig config;
  config.users = 3;
  ClosedLoopGenerator generator(engine_, app_, std::move(factory), std::move(config));
  generator.start();
  engine_.run_until(sim::from_seconds(2.0));
  EXPECT_GT(calls, 3);
}

}  // namespace
}  // namespace dcm::workload
