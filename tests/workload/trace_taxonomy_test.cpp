#include "workload/trace_taxonomy.h"

#include <gtest/gtest.h>

namespace dcm::workload {
namespace {

class TraceTaxonomyTest : public ::testing::TestWithParam<TracePattern> {};

TEST_P(TraceTaxonomyTest, ProducesValidTrace) {
  const Trace trace = make_trace(GetParam(), 350, 7);
  EXPECT_GE(trace.step_count(), 690u);
  EXPECT_LE(trace.step_count(), 710u);
  for (int u : trace.values()) {
    EXPECT_GE(u, 1);
    EXPECT_LE(u, 400);  // peak 350 + noise margin
  }
}

TEST_P(TraceTaxonomyTest, PeakNearRequestedLevel) {
  const Trace trace = make_trace(GetParam(), 350, 7);
  EXPECT_GE(trace.max_users(), 320);
  EXPECT_LE(trace.max_users(), 400);
}

TEST_P(TraceTaxonomyTest, DeterministicPerSeed) {
  EXPECT_EQ(make_trace(GetParam(), 350, 3).values(), make_trace(GetParam(), 350, 3).values());
}

TEST_P(TraceTaxonomyTest, ScalesWithPeakParameter) {
  const Trace small = make_trace(GetParam(), 100, 7);
  EXPECT_LE(small.max_users(), 120);
  EXPECT_GE(small.max_users(), 85);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, TraceTaxonomyTest,
                         ::testing::ValuesIn(all_trace_patterns()),
                         [](const ::testing::TestParamInfo<TracePattern>& param_info) {
                           std::string name = trace_pattern_name(param_info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(TraceTaxonomyShapeTest, BigSpikeIsCalmOutsideTheSpike) {
  const Trace trace = make_trace(TracePattern::kBigSpike);
  EXPECT_LT(trace.users_at(sim::from_seconds(100.0)), 160);
  EXPECT_GT(trace.users_at(sim::from_seconds(330.0)), 300);
  EXPECT_LT(trace.users_at(sim::from_seconds(500.0)), 160);
}

TEST(TraceTaxonomyShapeTest, DualPhaseHasTwoPlateaus) {
  const Trace trace = make_trace(TracePattern::kDualPhase);
  const int low = trace.users_at(sim::from_seconds(100.0));
  const int high = trace.users_at(sim::from_seconds(500.0));
  EXPECT_GT(high, 2 * low - 40);
}

TEST(TraceTaxonomyShapeTest, QuicklyVaryingOscillates) {
  const Trace trace = make_trace(TracePattern::kQuicklyVarying);
  // Peak-to-trough within one 80 s period.
  const int peak = trace.users_at(sim::from_seconds(20.0));
  const int trough = trace.users_at(sim::from_seconds(60.0));
  EXPECT_GT(peak, trough + 100);
}

TEST(TraceTaxonomyShapeTest, SteepTriPhaseRampsGetSteeper) {
  const Trace trace = make_trace(TracePattern::kSteepTriPhase);
  const auto slope = [&](int from, int to) {
    return static_cast<double>(trace.users_at(sim::from_seconds(static_cast<double>(to))) -
                               trace.users_at(sim::from_seconds(static_cast<double>(from)))) /
           (to - from);
  };
  const double s1 = slope(20, 180);
  const double s2 = slope(250, 380);
  const double s3 = slope(450, 540);
  EXPECT_GT(s2, s1);
  EXPECT_GT(s3, s2);
}

TEST(TraceTaxonomyShapeTest, NamesAreUniqueAndStable) {
  std::set<std::string> names;
  for (const auto pattern : all_trace_patterns()) names.insert(trace_pattern_name(pattern));
  EXPECT_EQ(names.size(), 6u);
}

}  // namespace
}  // namespace dcm::workload
