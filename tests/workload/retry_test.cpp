// Client-side deadline/retry (resilience mechanism) and the ClientStats
// failure accounting behind goodput / error-rate reporting.
#include <gtest/gtest.h>

#include "core/topologies.h"
#include "workload/closed_loop.h"

namespace dcm::workload {
namespace {

TEST(ClientRetryTest, DeadlineExpirationsAreTimeoutsThenFinalError) {
  sim::Engine engine;
  ntier::NTierApp app(engine, core::rubbos_app_config({1, 1, 1}, {1000, 100, 80}));
  const ServletCatalog catalog = ServletCatalog::browse_only_mix();
  auto generator = make_jmeter(engine, app, catalog, 1);

  // A 1 ms deadline is far below any servlet's service time, so every
  // attempt times out: each cycle is exactly (max_retries + 1) timeouts,
  // max_retries re-issues, and one final error.
  RetryPolicy policy;
  policy.timeout_seconds = 0.001;
  policy.max_retries = 1;
  policy.backoff_base_seconds = 0.01;
  generator->set_retry_policy(policy);
  generator->start();
  engine.run_until(sim::from_seconds(10.0));
  generator->stop();
  engine.run_until(sim::from_seconds(12.0));

  const ClientStats& stats = generator->stats();
  EXPECT_EQ(stats.completed(), 0u);
  EXPECT_GT(stats.errors(), 0u);
  EXPECT_EQ(stats.timeouts(), 2 * stats.errors());
  EXPECT_EQ(stats.retries(), stats.errors());
}

TEST(ClientRetryTest, RetryRecoversFromSilentlyCrashedBackend) {
  sim::Engine engine;
  ntier::NTierApp app(engine, core::rubbos_app_config({1, 2, 1}, {1000, 100, 80}));
  // tomcat-vm0 crashes silently: the balancer keeps routing to it and every
  // visit that lands there fails fast. Without retries those surface as
  // client errors; with one retry the re-issue lands on the survivor.
  ASSERT_TRUE(app.tier(1).inject_crash("tomcat-vm0"));

  const ServletCatalog catalog = ServletCatalog::browse_only_mix();
  auto generator = make_jmeter(engine, app, catalog, 1);
  RetryPolicy policy;
  policy.max_retries = 2;
  policy.backoff_base_seconds = 0.01;
  generator->set_retry_policy(policy);
  generator->start();
  engine.run_until(sim::from_seconds(30.0));

  const ClientStats& stats = generator->stats();
  EXPECT_EQ(stats.errors(), 0u);
  EXPECT_GT(stats.completed(), 20u);
  EXPECT_GT(stats.retries(), 0u);
  EXPECT_EQ(stats.timeouts(), 0u);  // failure-driven retries, no deadline set
}

TEST(ClientRetryTest, DisabledPolicyKeepsLegacyAccounting) {
  sim::Engine engine;
  ntier::NTierApp app(engine, core::rubbos_app_config({1, 1, 1}, {1000, 100, 80}));
  const ServletCatalog catalog = ServletCatalog::browse_only_mix();
  auto generator = make_jmeter(engine, app, catalog, 4);
  ASSERT_FALSE(generator->retry_policy().enabled());
  generator->start();
  engine.run_until(sim::from_seconds(10.0));

  const ClientStats& stats = generator->stats();
  EXPECT_GT(stats.completed(), 0u);
  EXPECT_EQ(stats.timeouts(), 0u);
  EXPECT_EQ(stats.retries(), 0u);
}

TEST(ClientStatsAccountingTest, GoodputCountsOnlyBoundBeatingCompletions) {
  ClientStats stats;
  stats.set_goodput_bound(1.0);
  stats.record_completion(sim::from_seconds(10.0), 0.2);
  stats.record_completion(sim::from_seconds(10.5), 2.5);  // too slow: not good
  stats.record_error(sim::from_seconds(11.0));
  EXPECT_EQ(stats.completed(), 2u);
  EXPECT_EQ(stats.good(), 1u);
  EXPECT_EQ(stats.errors(), 1u);

  // Window [10, 12): 1 good completion over 2 s.
  EXPECT_DOUBLE_EQ(stats.mean_goodput(sim::from_seconds(10.0), sim::from_seconds(12.0)), 0.5);
  // 1 error out of (1 error + 2 completions).
  EXPECT_DOUBLE_EQ(stats.error_rate(sim::from_seconds(10.0), sim::from_seconds(12.0)),
                   1.0 / 3.0);
  // An idle window reports 0, not NaN.
  EXPECT_DOUBLE_EQ(stats.error_rate(sim::from_seconds(50.0), sim::from_seconds(60.0)), 0.0);
}

// Retry-storm goodput audit: a request that settles on a later attempt is
// ONE completion whose response time spans every attempt — timeout waits
// and backoff sleeps included. Each attempt here is individually fast
// (fail-fast crash or ~10 ms of service), but the 2 s backoff puts every
// retried request past the 1 s goodput bound. If completions were recorded
// per attempt, or response time measured from the last re-issue, goodput
// would (wrongly) count these.
TEST(ClientStatsAccountingTest, RetriedCompletionIsOneRequestMeasuredEndToEnd) {
  sim::Engine engine;
  ntier::NTierApp app(engine, core::rubbos_app_config({1, 2, 1}, {1000, 100, 80}));
  ASSERT_TRUE(app.tier(1).inject_crash("tomcat-vm0"));

  const ServletCatalog catalog = ServletCatalog::browse_only_mix();
  auto generator = make_jmeter(engine, app, catalog, 1);
  RetryPolicy policy;
  policy.max_retries = 2;
  policy.backoff_base_seconds = 2.0;  // jitter 0.2 keeps this in [1.6, 2.4] s
  generator->set_retry_policy(policy);
  ASSERT_DOUBLE_EQ(generator->stats().goodput_bound(), 1.0);
  generator->start();
  engine.run_until(sim::from_seconds(60.0));

  const ClientStats& stats = generator->stats();
  EXPECT_EQ(stats.errors(), 0u);  // the survivor always answers eventually
  EXPECT_GT(stats.retries(), 0u);
  EXPECT_GT(stats.completed(), 0u);
  // One sequential user against a 2-member round-robin balancer: each cycle
  // makes exactly two picks (fail on the crashed VM, succeed on the
  // survivor), so EVERY request's first attempt lands on the crashed VM and
  // every completion carries >= 1.6 s of backoff. Each attempt was
  // individually fast — goodput must still be zero, because response time
  // is end-to-end across attempts.
  EXPECT_EQ(stats.good(), 0u);
  // Each retried completion is one request and one re-issue: completions
  // missing the bound can never outnumber the re-issued attempts.
  EXPECT_LE(stats.completed() - stats.good(), stats.retries());
  // The histogram saw the retried requests' true end-to-end times.
  EXPECT_GT(stats.response_time_stats().max(), 1.6);
}

TEST(ClientStatsAccountingTest, TimeoutsAndRetriesAreIndependentCounters) {
  ClientStats stats;
  stats.record_timeout(sim::from_seconds(1.0));
  stats.record_timeout(sim::from_seconds(2.0));
  stats.record_retry();
  EXPECT_EQ(stats.timeouts(), 2u);
  EXPECT_EQ(stats.retries(), 1u);
  // Neither touches completion or error accounting.
  EXPECT_EQ(stats.completed(), 0u);
  EXPECT_EQ(stats.errors(), 0u);
}

}  // namespace
}  // namespace dcm::workload
