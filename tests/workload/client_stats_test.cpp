#include "workload/client_stats.h"

#include <gtest/gtest.h>

#include "core/topologies.h"
#include "workload/closed_loop.h"

namespace dcm::workload {
namespace {

TEST(ClientStatsTest, RecordsCompletionsAndErrors) {
  ClientStats stats;
  stats.record_completion(sim::from_seconds(1.0), 0.5);
  stats.record_completion(sim::from_seconds(1.5), 1.5);
  stats.record_error(sim::from_seconds(2.0));
  EXPECT_EQ(stats.completed(), 2u);
  EXPECT_EQ(stats.errors(), 1u);
  EXPECT_DOUBLE_EQ(stats.response_time_stats().mean(), 1.0);
  EXPECT_DOUBLE_EQ(stats.response_time_stats().max(), 1.5);
}

TEST(ClientStatsTest, MeanThroughputOverWindow) {
  ClientStats stats;
  for (int i = 0; i < 100; ++i) {
    stats.record_completion(sim::from_seconds(10.0 + i * 0.1), 0.05);
  }
  // 100 completions within [10, 20): 10/s over that window.
  EXPECT_NEAR(stats.mean_throughput(sim::from_seconds(10.0), sim::from_seconds(20.0)), 10.0,
              1e-9);
  // Nothing before t=10.
  EXPECT_DOUBLE_EQ(stats.mean_throughput(0, sim::from_seconds(10.0)), 0.0);
}

TEST(ClientStatsTest, PerServletBreakdown) {
  ClientStats stats;
  stats.record_completion(sim::from_seconds(1.0), 0.1, /*servlet=*/3);
  stats.record_completion(sim::from_seconds(1.1), 0.3, /*servlet=*/3);
  stats.record_completion(sim::from_seconds(1.2), 0.9, /*servlet=*/7);
  stats.record_completion(sim::from_seconds(1.3), 0.5);  // untyped
  const auto& per_servlet = stats.per_servlet_response_times();
  ASSERT_EQ(per_servlet.size(), 2u);
  EXPECT_EQ(per_servlet.at(3).count(), 2u);
  EXPECT_DOUBLE_EQ(per_servlet.at(3).mean(), 0.2);
  EXPECT_DOUBLE_EQ(per_servlet.at(7).mean(), 0.9);
}

TEST(ClientStatsTest, GeneratorsAttributePerServletTimes) {
  sim::Engine engine;
  ntier::NTierApp app(engine, core::rubbos_app_config({1, 1, 1}, {1000, 100, 80}));
  const ServletCatalog catalog = ServletCatalog::browse_only_mix();
  auto generator = make_rubbos_clients(engine, app, catalog, 80);
  generator->start();
  engine.run_until(sim::from_seconds(60.0));

  const auto& per_servlet = generator->stats().per_servlet_response_times();
  // All nine browse servlets exercised.
  EXPECT_EQ(per_servlet.size(), 9u);
  uint64_t total = 0;
  for (const auto& [servlet, welford] : per_servlet) {
    EXPECT_GT(catalog.servlet(static_cast<size_t>(servlet)).weight, 0.0);
    total += welford.count();
  }
  EXPECT_EQ(total, generator->stats().completed());

  // The heavier search servlets must have higher mean response times than
  // the cheap category listing (their demand scales are ~3x).
  int search_in_comments = -1, browse_categories = -1;
  for (size_t i = 0; i < catalog.size(); ++i) {
    if (catalog.servlet(i).name == "SearchInComments") search_in_comments = static_cast<int>(i);
    if (catalog.servlet(i).name == "BrowseCategories") browse_categories = static_cast<int>(i);
  }
  ASSERT_GE(search_in_comments, 0);
  ASSERT_GE(browse_categories, 0);
  EXPECT_GT(per_servlet.at(search_in_comments).mean(),
            per_servlet.at(browse_categories).mean());
}

TEST(ClientStatsTest, HistogramPercentilesOrdered) {
  ClientStats stats;
  for (int i = 1; i <= 1000; ++i) {
    stats.record_completion(sim::from_seconds(i * 0.01), 0.001 * i);
  }
  const auto& histogram = stats.response_time_histogram();
  EXPECT_LT(histogram.p50(), histogram.p95());
  EXPECT_LT(histogram.p95(), histogram.p99());
  EXPECT_NEAR(histogram.p50(), 0.5, 0.05);
}

}  // namespace
}  // namespace dcm::workload
