#include "workload/open_loop.h"

#include <gtest/gtest.h>

#include "core/topologies.h"

namespace dcm::workload {
namespace {

class OpenLoopTest : public ::testing::Test {
 protected:
  OpenLoopTest()
      : app_(engine_, core::rubbos_app_config({1, 1, 1}, {1000, 100, 80})),
        catalog_(ServletCatalog::browse_only_mix()) {}

  sim::Engine engine_;
  ntier::NTierApp app_;
  ServletCatalog catalog_;
};

TEST_F(OpenLoopTest, ThroughputMatchesArrivalRateWhenUnsaturated) {
  OpenLoopGenerator generator(engine_, app_, catalog_factory(catalog_), 30.0);
  generator.start();
  engine_.run_until(sim::from_seconds(120.0));
  const double x = generator.stats().mean_throughput(sim::from_seconds(20.0),
                                                     sim::from_seconds(120.0));
  EXPECT_NEAR(x, 30.0, 2.0);
  EXPECT_EQ(generator.stats().errors(), 0u);
}

TEST_F(OpenLoopTest, RateChangeTakesEffect) {
  OpenLoopGenerator generator(engine_, app_, catalog_factory(catalog_), 10.0);
  generator.start();
  engine_.run_until(sim::from_seconds(60.0));
  generator.set_arrival_rate(40.0);
  engine_.run_until(sim::from_seconds(160.0));
  const double x_late = generator.stats().mean_throughput(sim::from_seconds(80.0),
                                                          sim::from_seconds(160.0));
  EXPECT_NEAR(x_late, 40.0, 3.0);
}

TEST_F(OpenLoopTest, OverloadGrowsBacklog) {
  // Offered 120 req/s vs ~69 req/s capacity at default pools: outstanding
  // requests pile up instead of self-throttling.
  OpenLoopGenerator generator(engine_, app_, catalog_factory(catalog_), 120.0);
  generator.start();
  engine_.run_until(sim::from_seconds(60.0));
  const int backlog_1m = generator.outstanding();
  engine_.run_until(sim::from_seconds(120.0));
  EXPECT_GT(generator.outstanding(), backlog_1m + 500);
}

TEST_F(OpenLoopTest, StopHaltsArrivals) {
  OpenLoopGenerator generator(engine_, app_, catalog_factory(catalog_), 50.0);
  generator.start();
  engine_.run_until(sim::from_seconds(10.0));
  generator.stop();
  const uint64_t at_stop = generator.stats().completed();
  engine_.run_until(sim::from_seconds(20.0));
  // Outstanding drain, but no new arrivals: completions grow only by the
  // in-flight few.
  EXPECT_LE(generator.stats().completed(), at_stop + 100);
  EXPECT_EQ(generator.outstanding(), 0);
}

TEST_F(OpenLoopTest, ZeroRateIsIdle) {
  OpenLoopGenerator generator(engine_, app_, catalog_factory(catalog_), 0.0);
  generator.start();
  engine_.run_until(sim::from_seconds(10.0));
  EXPECT_EQ(generator.stats().completed(), 0u);
}

TEST_F(OpenLoopTest, PoissonGapsHaveExponentialSpread) {
  // Indirect check: count arrivals in 1 s buckets; variance ≈ mean for a
  // Poisson process.
  OpenLoopGenerator generator(engine_, app_, catalog_factory(catalog_), 20.0);
  generator.start();
  engine_.run_until(sim::from_seconds(300.0));
  const auto& buckets = generator.stats().throughput_series().buckets();
  metrics::Welford counts;
  for (size_t t = 20; t < buckets.size(); ++t) counts.add(buckets[t].stat.sum());
  EXPECT_NEAR(counts.variance() / counts.mean(), 1.0, 0.35);
}

}  // namespace
}  // namespace dcm::workload
