#include "sim/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace dcm::sim {
namespace {

TEST(EngineTest, ClockStartsAtZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
}

TEST(EngineTest, RunUntilAdvancesClockToEnd) {
  Engine engine;
  engine.run_until(from_seconds(5.0));
  EXPECT_EQ(engine.now(), from_seconds(5.0));
}

TEST(EngineTest, EventSeesItsOwnTimestamp) {
  Engine engine;
  SimTime seen = -1;
  engine.schedule_after(from_seconds(2.0), [&] { seen = engine.now(); });
  engine.run_until(from_seconds(10.0));
  EXPECT_EQ(seen, from_seconds(2.0));
}

TEST(EngineTest, EventsBeyondHorizonDoNotFire) {
  Engine engine;
  bool fired = false;
  engine.schedule_after(from_seconds(5.0), [&] { fired = true; });
  engine.run_until(from_seconds(4.0));
  EXPECT_FALSE(fired);
  engine.run_until(from_seconds(6.0));
  EXPECT_TRUE(fired);
}

TEST(EngineTest, ScheduleAtAbsoluteTime) {
  Engine engine;
  engine.run_until(from_seconds(1.0));
  SimTime seen = -1;
  engine.schedule_at(from_seconds(3.0), [&] { seen = engine.now(); });
  engine.run_until(from_seconds(4.0));
  EXPECT_EQ(seen, from_seconds(3.0));
}

TEST(EngineTest, NestedSchedulingWorks) {
  Engine engine;
  std::vector<double> times;
  engine.schedule_after(from_seconds(1.0), [&] {
    times.push_back(to_seconds(engine.now()));
    engine.schedule_after(from_seconds(1.0), [&] {
      times.push_back(to_seconds(engine.now()));
    });
  });
  engine.run_until(from_seconds(5.0));
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(EngineTest, PeriodicFiresAtEveryPeriod) {
  Engine engine;
  std::vector<double> times;
  engine.schedule_periodic(from_seconds(1.0), [&] { times.push_back(to_seconds(engine.now())); });
  engine.run_until(from_seconds(4.5));
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[3], 4.0);
}

TEST(EngineTest, PeriodicCancelStopsChain) {
  Engine engine;
  int count = 0;
  auto handle = engine.schedule_periodic(from_seconds(1.0), [&] { ++count; });
  engine.run_until(from_seconds(2.5));
  handle.cancel();
  engine.run_until(from_seconds(10.0));
  EXPECT_EQ(count, 2);
}

TEST(EngineTest, PeriodicCanCancelItselfFromInside) {
  Engine engine;
  int count = 0;
  EventHandle handle;
  handle = engine.schedule_periodic(from_seconds(1.0), [&] {
    ++count;
    if (count == 3) handle.cancel();
  });
  engine.run_until(from_seconds(10.0));
  EXPECT_EQ(count, 3);
}

TEST(EngineTest, CancelledPeriodicReleasesCapturedState) {
  Engine engine;
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> observer = token;
  auto handle =
      engine.schedule_periodic(from_seconds(1.0), [token = std::move(token)] { (void)token; });
  engine.run_until(from_seconds(3.5));
  ASSERT_FALSE(observer.expired());  // chain alive, capture alive
  handle.cancel();
  // Regression: the old shared_ptr<function> self-capture cycle kept the
  // callable (and everything it captured) alive forever after cancellation.
  EXPECT_TRUE(observer.expired());
}

TEST(EngineTest, SelfCancelledPeriodicReleasesCapturedState) {
  Engine engine;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> observer = token;
  EventHandle handle;
  handle = engine.schedule_periodic(from_seconds(1.0),
                                    [token = std::move(token), &handle] { handle.cancel(); });
  engine.run_until(from_seconds(5.0));
  EXPECT_TRUE(observer.expired());
}

TEST(EngineTest, EngineDestructionReleasesPeriodicCapturedState) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> observer = token;
  {
    Engine engine;
    engine.schedule_periodic(from_seconds(1.0), [token = std::move(token)] { (void)token; });
    engine.run_until(from_seconds(2.5));
  }
  EXPECT_TRUE(observer.expired());
}

TEST(EngineTest, StalePeriodicHandleDoesNotCancelReusedSlot) {
  Engine engine;
  int first = 0, second = 0;
  auto h1 = engine.schedule_periodic(10, [&first] { ++first; });
  h1.cancel();
  auto h2 = engine.schedule_periodic(10, [&second] { ++second; });
  h1.cancel();  // stale handle; must not touch the chain that reused the slot
  engine.run_until(100);
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 10);
  h2.cancel();
}

TEST(EngineTest, PeriodicCallbackCanScheduleMorePeriodics) {
  Engine engine;
  int outer = 0, inner = 0;
  bool spawned = false;
  engine.schedule_periodic(from_seconds(1.0), [&] {
    ++outer;
    if (!spawned) {
      spawned = true;
      // Growing the periodic slab mid-fire must not invalidate the firing task.
      for (int i = 0; i < 8; ++i) {
        engine.schedule_periodic(from_seconds(10.0), [&inner] { ++inner; });
      }
    }
  });
  engine.run_until(from_seconds(21.5));
  EXPECT_EQ(outer, 21);
  EXPECT_EQ(inner, 16);  // spawned at t=1s, period 10s -> fire at 11s and 21s
}

TEST(EngineTest, RunForIsRelative) {
  Engine engine;
  engine.run_for(from_seconds(2.0));
  engine.run_for(from_seconds(3.0));
  EXPECT_EQ(engine.now(), from_seconds(5.0));
}

TEST(EngineTest, RunToCompletionDrainsEverything) {
  Engine engine;
  int fired = 0;
  engine.schedule_after(from_seconds(1.0), [&] {
    ++fired;
    engine.schedule_after(from_seconds(1.0), [&] { ++fired; });
  });
  engine.run_to_completion();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now(), from_seconds(2.0));
}

TEST(EngineTest, DispatchCountIncrements) {
  Engine engine;
  engine.schedule_after(1, [] {});
  engine.schedule_after(2, [] {});
  engine.run_until(10);
  EXPECT_EQ(engine.events_dispatched(), 2u);
}

TEST(TimeTest, ConversionsRoundTrip) {
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(12.25)), 12.25);
  EXPECT_DOUBLE_EQ(to_millis(from_millis(3.5)), 3.5);
}

}  // namespace
}  // namespace dcm::sim
