// Engine-level replay determinism: identical schedules produce identical
// dispatch traces, including under cancellation and periodic chains.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/engine.h"

namespace dcm::sim {
namespace {

std::vector<std::pair<SimTime, int>> run_schedule(uint64_t seed) {
  Engine engine;
  Rng rng(seed);
  std::vector<std::pair<SimTime, int>> trace;
  std::vector<EventHandle> handles;

  for (int i = 0; i < 500; ++i) {
    const SimTime at = rng.uniform_int(0, from_seconds(10.0));
    handles.push_back(engine.schedule_at(at, [&trace, i, &engine] {
      trace.emplace_back(engine.now(), i);
    }));
  }
  // Cancel a deterministic subset.
  for (size_t i = 0; i < handles.size(); i += 7) handles[i].cancel();
  engine.schedule_periodic(from_millis(333.0), [&trace, &engine] {
    trace.emplace_back(engine.now(), -1);
  });
  engine.run_until(from_seconds(10.0));
  return trace;
}

TEST(EngineReplayTest, IdenticalSchedulesReplayIdentically) {
  EXPECT_EQ(run_schedule(11), run_schedule(11));
}

TEST(EngineReplayTest, DifferentSchedulesDiffer) {
  EXPECT_NE(run_schedule(11), run_schedule(12));
}

TEST(EngineReplayTest, DispatchTraceIsTimeOrdered) {
  const auto trace = run_schedule(13);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].first, trace[i].first);
  }
}

}  // namespace
}  // namespace dcm::sim
