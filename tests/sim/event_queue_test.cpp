#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace dcm::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending_upper_bound(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(42, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, NextTimeReportsEarliestLiveEvent) {
  EventQueue q;
  q.schedule(50, [] {});
  q.schedule(5, [] {});
  EXPECT_EQ(q.next_time(), 5);
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  auto handle = q.schedule(10, [&] { fired = true; });
  handle.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelMiddleEventSkipsOnlyIt) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(10, [&] { order.push_back(1); });
  auto handle = q.schedule(20, [&] { order.push_back(2); });
  q.schedule(30, [&] { order.push_back(3); });
  handle.cancel();
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, CancelAfterFireIsHarmless) {
  EventQueue q;
  int fires = 0;
  auto handle = q.schedule(1, [&] { ++fires; });
  q.pop().fn();
  handle.cancel();  // must not crash or affect anything
  EXPECT_EQ(fires, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.valid());
  handle.cancel();  // no-op
}

TEST(EventQueueTest, CopiedHandlesShareCancellation) {
  EventQueue q;
  bool fired = false;
  EventHandle a = q.schedule(10, [&] { fired = true; });
  EventHandle b = a;
  b.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, StaleHandleDoesNotCancelReusedSlot) {
  EventQueue q;
  int fired = 0;
  auto h1 = q.schedule(1, [&] { ++fired; });
  q.pop().fn();
  // The popped event's slot is back on the free-list; this schedule reuses it.
  q.schedule(2, [&] { ++fired; });
  h1.cancel();  // stale generation — must not cancel the new event
  ASSERT_FALSE(q.empty());
  q.pop().fn();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, CancelledSlotReuseKeepsNewEventAlive) {
  EventQueue q;
  int fired = 0;
  auto h1 = q.schedule(10, [&] { ++fired; });
  h1.cancel();
  auto h2 = q.schedule(20, [&] { ++fired; });
  h1.cancel();  // double-cancel through a stale generation: no-op
  ASSERT_FALSE(q.empty());
  auto popped = q.pop();
  EXPECT_EQ(popped.time, 20);
  popped.fn();
  EXPECT_EQ(fired, 1);
  h2.cancel();  // already fired: no-op
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, StressAgainstReferenceModel) {
  // Interleaved schedule/cancel/pop checked against an ordered-map oracle:
  // pops must come out in exact (time, scheduling-order) sequence no matter
  // how the 4-ary heap array is permuted by cancellations.
  EventQueue q;
  dcm::Rng rng(20170607);
  std::map<std::pair<SimTime, uint64_t>, int> oracle;  // (time, seq) -> id
  std::unordered_map<int, EventHandle> handles;
  uint64_t seq = 0;
  int next_id = 0;
  int last_popped = -1;
  for (int step = 0; step < 30000; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.45 || oracle.empty()) {
      const SimTime at = rng.uniform_int(0, 5000);
      const int id = next_id++;
      handles[id] = q.schedule(at, [&last_popped, id] { last_popped = id; });
      oracle[{at, seq++}] = id;
    } else if (roll < 0.65) {
      // Cancel a random live event.
      auto it = oracle.begin();
      std::advance(it, rng.uniform_int(0, static_cast<int64_t>(oracle.size()) - 1));
      handles[it->second].cancel();
      handles.erase(it->second);
      oracle.erase(it);
    } else {
      ASSERT_FALSE(q.empty());
      auto popped = q.pop();
      popped.fn();
      const auto expected = oracle.begin();
      EXPECT_EQ(popped.time, expected->first.first);
      EXPECT_EQ(last_popped, expected->second);
      handles.erase(expected->second);
      oracle.erase(expected);
    }
    ASSERT_EQ(q.empty(), oracle.empty());
  }
  while (!oracle.empty()) {
    auto popped = q.pop();
    popped.fn();
    const auto expected = oracle.begin();
    EXPECT_EQ(popped.time, expected->first.first);
    EXPECT_EQ(last_popped, expected->second);
    oracle.erase(expected);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, EmptyAfterAllCancelled) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 5; ++i) handles.push_back(q.schedule(i, [] {}));
  for (auto& h : handles) h.cancel();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace dcm::sim
