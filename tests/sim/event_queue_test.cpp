#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace dcm::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending_upper_bound(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(42, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, NextTimeReportsEarliestLiveEvent) {
  EventQueue q;
  q.schedule(50, [] {});
  q.schedule(5, [] {});
  EXPECT_EQ(q.next_time(), 5);
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  auto handle = q.schedule(10, [&] { fired = true; });
  handle.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelMiddleEventSkipsOnlyIt) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(10, [&] { order.push_back(1); });
  auto handle = q.schedule(20, [&] { order.push_back(2); });
  q.schedule(30, [&] { order.push_back(3); });
  handle.cancel();
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, CancelAfterFireIsHarmless) {
  EventQueue q;
  int fires = 0;
  auto handle = q.schedule(1, [&] { ++fires; });
  q.pop().fn();
  handle.cancel();  // must not crash or affect anything
  EXPECT_EQ(fires, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.valid());
  handle.cancel();  // no-op
}

TEST(EventQueueTest, CopiedHandlesShareCancellation) {
  EventQueue q;
  bool fired = false;
  EventHandle a = q.schedule(10, [&] { fired = true; });
  EventHandle b = a;
  b.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, EmptyAfterAllCancelled) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 5; ++i) handles.push_back(q.schedule(i, [] {}));
  for (auto& h : handles) h.cancel();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace dcm::sim
