// Asserts the simulator hot path is allocation-free at steady state.
//
// This TU replaces the global operator new/delete with counting forwarders
// (binary-wide, which is why the assertions measure deltas around tight
// regions rather than absolute counts). Once the event heap and slab have
// grown to the working-set size, schedule/dispatch, cancellation, and
// periodic re-arming must not touch the heap at all.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <new>
#include <vector>

#include "core/topologies.h"
#include "ntier/app.h"
#include "ntier/request.h"
#include "sim/engine.h"

namespace {
std::atomic<uint64_t> g_alloc_count{0};

uint64_t allocations() { return g_alloc_count.load(std::memory_order_relaxed); }
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const size_t a = static_cast<size_t>(align);
  const size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace dcm::sim {
namespace {

TEST(AllocationFreeTest, SteadyStateScheduleDispatchDoesNotAllocate) {
  Engine engine;
  uint64_t fired = 0;
  uint64_t* fired_ptr = &fired;
  SimTime t = 0;
  // Warm-up: grow the heap vector and slot slab to working-set size.
  for (int i = 0; i < 512; ++i) {
    engine.schedule_at(++t, [fired_ptr] { ++*fired_ptr; });
    engine.run_until(t);
  }
  const uint64_t before = allocations();
  for (int i = 0; i < 20000; ++i) {
    engine.schedule_at(++t, [fired_ptr] { ++*fired_ptr; });
    engine.run_until(t);
  }
  EXPECT_EQ(allocations(), before);
  EXPECT_EQ(fired, 20512u);
}

TEST(AllocationFreeTest, SteadyStateCancelCycleDoesNotAllocate) {
  Engine engine;
  uint64_t fired = 0;
  uint64_t* fired_ptr = &fired;
  SimTime t = 0;
  auto cycle = [&](int rounds) {
    for (int i = 0; i < rounds; ++i) {
      // A deep-ish pending set with half the events cancelled before firing.
      std::array<EventHandle, 32> handles;
      for (size_t k = 0; k < handles.size(); ++k) {
        handles[k] = engine.schedule_at(t + static_cast<SimTime>(k) + 1,
                                        [fired_ptr] { ++*fired_ptr; });
      }
      for (size_t k = 0; k < handles.size(); k += 2) handles[k].cancel();
      t += static_cast<SimTime>(handles.size());
      engine.run_until(t);
    }
  };
  cycle(64);  // warm-up
  const uint64_t before = allocations();
  cycle(1000);
  EXPECT_EQ(allocations(), before);
  EXPECT_EQ(fired, (64u + 1000u) * 16u);
}

TEST(AllocationFreeTest, PeriodicReArmDoesNotAllocate) {
  Engine engine;
  uint64_t ticks = 0;
  uint64_t* ticks_ptr = &ticks;
  auto handle = engine.schedule_periodic(10, [ticks_ptr] { ++*ticks_ptr; });
  engine.run_until(1000);  // warm-up
  const uint64_t before = allocations();
  engine.run_until(101000);
  EXPECT_EQ(allocations(), before);
  EXPECT_EQ(ticks, 10100u);
  handle.cancel();
}

TEST(AllocationFreeTest, ExactCapacityCaptureIsAllocationFree) {
  Engine engine;
  std::array<char, EventFn::kInlineCapacity> payload{};
  engine.schedule_at(1, [payload] { (void)payload; });
  engine.run_until(1);  // warm the slab slot
  const uint64_t before = allocations();
  for (SimTime t = 2; t < 100; ++t) {
    engine.schedule_at(t, [payload] { (void)payload; });
    engine.run_until(t);
  }
  EXPECT_EQ(allocations(), before);
}

TEST(AllocationFreeTest, ThreeTierRoundTripIsAllocationFreeAtSteadyState) {
  // End-to-end pin on the request-slab/arena refactor: once the event slab,
  // the per-server visit slabs, and the request arena have grown to the
  // working set, a full web → app → db round trip (request construction,
  // worker/connection admission, CPU spans on all three tiers, and the
  // response path back) must not touch the global allocator.
  // The driver captures a single pointer so its own DoneFn stays inside
  // std::function's SBO — the test must not allocate on its own behalf.
  struct Driver {
    Engine& engine;
    ntier::NTierApp& app;
    uint64_t completed = 0;
    uint64_t issued = 0;
    void issue() {
      ntier::RequestPtr request = ntier::make_request_context(&engine.arena());
      request->id = ++issued;
      request->created = engine.now();
      request->demand_scale = {1.0, 1.0, 1.0};
      request->downstream_calls = {1, 2, 0};  // 1 AJP call, 2 DB queries
      app.submit(request, [this](bool ok) {
        EXPECT_TRUE(ok);
        ++completed;
        if (issued < 1200) issue();
      });
    }
  };
  Engine engine;
  ntier::NTierApp app(engine, core::rubbos_app_config({1, 1, 1}, {1000, 100, 80}));
  Driver driver{engine, app};
  driver.issue();  // sequential round trips: each completion issues the next
  engine.run_until(sim::from_seconds(5.0));
  // ~115 sequential trips complete in 5 sim-seconds — more than enough to
  // grow every slab to the working set (concurrency is 1 throughout).
  ASSERT_GE(driver.completed, 100u) << "warm-up did not complete";
  const uint64_t before = allocations();
  engine.run_to_completion();
  EXPECT_EQ(allocations(), before)
      << "steady-state request round trips allocated";
  EXPECT_EQ(driver.completed, 1200u);
}

TEST(AllocationFreeTest, OversizedCapturesHeapBoxButStillWork) {
  Engine engine;
  std::array<char, EventFn::kInlineCapacity + 16> big{};
  big[0] = 9;
  int out = 0;
  const uint64_t before = allocations();
  engine.schedule_at(1, [big, &out] { out = big[0]; });
  EXPECT_GT(allocations(), before);  // boxed: capture exceeds SBO budget
  engine.run_until(1);
  EXPECT_EQ(out, 9);
}

}  // namespace
}  // namespace dcm::sim
