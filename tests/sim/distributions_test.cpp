#include "sim/distributions.h"

#include <gtest/gtest.h>

#include <memory>

namespace dcm::sim {
namespace {

double sample_mean(const Distribution& dist, int n = 100000, uint64_t seed = 5) {
  Rng rng(seed);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += dist.sample(rng);
  return sum / n;
}

TEST(DistributionsTest, DeterministicAlwaysSameValue) {
  auto d = make_deterministic(0.25);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d->sample(rng), 0.25);
  EXPECT_DOUBLE_EQ(d->mean(), 0.25);
}

TEST(DistributionsTest, ExponentialMean) {
  auto d = make_exponential(2.0);
  EXPECT_DOUBLE_EQ(d->mean(), 2.0);
  EXPECT_NEAR(sample_mean(*d), 2.0, 0.05);
}

TEST(DistributionsTest, UniformMeanAndBounds) {
  auto d = make_uniform(1.0, 3.0);
  EXPECT_DOUBLE_EQ(d->mean(), 2.0);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double x = d->sample(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(DistributionsTest, LognormalMean) {
  auto d = make_lognormal(0.5, 0.3);
  EXPECT_DOUBLE_EQ(d->mean(), 0.5);
  EXPECT_NEAR(sample_mean(*d), 0.5, 0.01);
}

TEST(DistributionsTest, EmpiricalResamples) {
  auto d = make_empirical({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(d->mean(), 2.0);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = d->sample(rng);
    // Resampling returns the exact stored atoms, so exact equality is meant.
    EXPECT_TRUE(x == 1.0 || x == 2.0 || x == 3.0);  // dcm-lint: allow(no-float-eq)
  }
}

TEST(DistributionsTest, CloneIsIndependentButEquivalent) {
  auto d = make_exponential(1.5);
  auto c = d->clone();
  EXPECT_DOUBLE_EQ(c->mean(), 1.5);
  // Same rng stream → identical draws from original and clone.
  Rng a(4), b(4);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(d->sample(a), c->sample(b));
}

TEST(DistributionsTest, AllSamplesNonNegative) {
  std::vector<std::unique_ptr<Distribution>> dists;
  dists.push_back(make_deterministic(0.0));
  dists.push_back(make_exponential(1.0));
  dists.push_back(make_uniform(0.0, 1.0));
  dists.push_back(make_lognormal(1.0, 1.0));
  dists.push_back(make_empirical({0.0, 0.5}));
  Rng rng(6);
  for (const auto& d : dists) {
    for (int i = 0; i < 1000; ++i) EXPECT_GE(d->sample(rng), 0.0);
  }
}

}  // namespace
}  // namespace dcm::sim
